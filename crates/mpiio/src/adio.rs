//! The ADIO layer: the abstract device interface the MPI-IO logic sits on,
//! with three drivers — DAFS (the paper's contribution), NFS (the
//! baseline), and UFS (a node-local memory filesystem).
//!
//! The interface is the minimal contract ROMIO's ADIO demands of a
//! filesystem: contiguous reads/writes at explicit offsets, batched
//! variants (which the DAFS driver pipelines over session credits),
//! resize/flush, and an optional shared-file-pointer fetch-and-add
//! primitive (implemented on DAFS with the protocol's file locks; absent
//! on NFS, where ROMIO historically had to fall back to unsupported or
//! fcntl-lock emulation).

use std::sync::Arc;

use dafs::{
    DafsBatch, DafsClient, DafsError, DafsStripedBatch, DafsStripedFile, ListReq, ListSeg, ReadReq,
    WriteReq,
};
use memfs::{FsError, MemFs, NodeId, SetAttr};
use nfsv3::{NfsClient, NfsError, NfsPendingRead, NfsPendingWrite};
use simnet::cost::HostCost;
use simnet::time::units::*;
use simnet::{ActorCtx, Host, SimDuration, VirtAddr};

/// The driver-level cause behind an [`AdioError::Io`]. Preserves the
/// original error from whichever filesystem client failed, so callers (and
/// reports) can distinguish a lost VIA connection from a malformed NFS
/// reply without each driver leaking its error type into every signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// The DAFS driver failed (session, transport, or protocol status).
    Dafs(DafsError),
    /// The NFS driver failed (RPC transport or server status).
    Nfs(NfsError),
    /// The local filesystem failed.
    Fs(FsError),
    /// ADIO-internal corruption (e.g. a short shared-pointer file).
    Protocol,
}

impl std::fmt::Display for IoFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoFault::Dafs(_) => write!(f, "DAFS driver failure"),
            IoFault::Nfs(_) => write!(f, "NFS driver failure"),
            IoFault::Fs(_) => write!(f, "local filesystem failure"),
            IoFault::Protocol => write!(f, "ADIO-internal protocol corruption"),
        }
    }
}

impl std::error::Error for IoFault {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoFault::Dafs(e) => Some(e),
            IoFault::Nfs(e) => Some(e),
            IoFault::Fs(e) => Some(e),
            IoFault::Protocol => None,
        }
    }
}

/// Driver-independent I/O errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdioError {
    /// Path missing (open without CREATE, or stale handle).
    NoSuchFile,
    /// Path exists (open with EXCL).
    Exists,
    /// The driver cannot perform this operation (e.g. shared pointers on
    /// NFS).
    NotSupported,
    /// Transport or protocol failure; the payload names the driver-level
    /// cause and is reachable through [`std::error::Error::source`].
    Io(IoFault),
}

/// Convenience alias.
pub type AdioResult<T> = Result<T, AdioError>;

impl std::fmt::Display for AdioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdioError::NoSuchFile => write!(f, "no such file"),
            AdioError::Exists => write!(f, "file already exists"),
            AdioError::NotSupported => write!(f, "operation not supported by this driver"),
            AdioError::Io(fault) => write!(f, "I/O failure: {fault}"),
        }
    }
}

impl std::error::Error for AdioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdioError::Io(fault) => Some(fault),
            _ => None,
        }
    }
}

impl From<DafsError> for AdioError {
    fn from(e: DafsError) -> AdioError {
        match e {
            DafsError::Status(dafs::DafsStatus::NoEnt) => AdioError::NoSuchFile,
            DafsError::Status(dafs::DafsStatus::Stale) => AdioError::NoSuchFile,
            DafsError::Status(dafs::DafsStatus::Exists) => AdioError::Exists,
            DafsError::Status(dafs::DafsStatus::NotSupported) => AdioError::NotSupported,
            other => AdioError::Io(IoFault::Dafs(other)),
        }
    }
}

impl From<NfsError> for AdioError {
    fn from(e: NfsError) -> AdioError {
        match e {
            NfsError::Status(nfsv3::NfsStatus::NoEnt) => AdioError::NoSuchFile,
            NfsError::Status(nfsv3::NfsStatus::Stale) => AdioError::NoSuchFile,
            NfsError::Status(nfsv3::NfsStatus::Exist) => AdioError::Exists,
            other => AdioError::Io(IoFault::Nfs(other)),
        }
    }
}

impl From<FsError> for AdioError {
    fn from(e: FsError) -> AdioError {
        match e {
            FsError::NotFound | FsError::Stale => AdioError::NoSuchFile,
            FsError::Exists => AdioError::Exists,
            other => AdioError::Io(IoFault::Fs(other)),
        }
    }
}

/// Which ADIO driver backs a filesystem or open file.
///
/// Typed replacement for the old stringly `name() -> &'static str`:
/// dispatch sites match exhaustively, and reports render it through
/// [`DriverKind::as_str`] / `Display`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DriverKind {
    /// DAFS over VIA (the paper's system).
    Dafs,
    /// One logical file striped round-robin across several DAFS servers.
    DafsStriped,
    /// NFSv3 over TCP (the baseline).
    Nfs,
    /// Node-local in-memory filesystem.
    Ufs,
}

impl DriverKind {
    /// Short lower-case name for reports ("dafs" / "dafs-striped" / "nfs"
    /// / "ufs").
    pub fn as_str(self) -> &'static str {
        match self {
            DriverKind::Dafs => "dafs",
            DriverKind::DafsStriped => "dafs-striped",
            DriverKind::Nfs => "nfs",
            DriverKind::Ufs => "ufs",
        }
    }
}

impl std::fmt::Display for DriverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for DriverKind {
    type Err = ();

    /// Inverse of [`DriverKind::as_str`] (case-insensitive).
    fn from_str(s: &str) -> Result<DriverKind, ()> {
        match s.to_ascii_lowercase().as_str() {
            "dafs" => Ok(DriverKind::Dafs),
            "dafs-striped" | "dafs_striped" => Ok(DriverKind::DafsStriped),
            "nfs" => Ok(DriverKind::Nfs),
            "ufs" => Ok(DriverKind::Ufs),
            _ => Err(()),
        }
    }
}

/// How many times the ADIO data paths re-attempt an operation that failed
/// with a *transient* fault (lost session, exhausted retransmits) after the
/// driver's own recovery gave up. Last-resort graceful degradation: the
/// layers below already retransmit (NFS) and reconnect/replay (DAFS).
const ADIO_RETRIES: u32 = 2;

/// Whether an error is worth re-attempting at this layer. Server status
/// errors (NoEnt, Exists, ...) are deterministic and excluded.
fn transient(e: &AdioError) -> bool {
    matches!(
        e,
        AdioError::Io(IoFault::Dafs(
            DafsError::Transport(_) | DafsError::Connect(_)
        )) | AdioError::Io(IoFault::Nfs(NfsError::TimedOut | NfsError::Transport(_)))
    )
}

/// Run `f`, re-attempting up to [`ADIO_RETRIES`] times on transient faults.
/// Each retry bumps the `adio.retries` counter.
fn with_retries<T>(ctx: &ActorCtx, f: impl Fn() -> AdioResult<T>) -> AdioResult<T> {
    let mut attempts = 0u32;
    loop {
        match f() {
            Err(e) if transient(&e) && attempts < ADIO_RETRIES => {
                attempts += 1;
                ctx.metrics().counter("adio.retries").inc();
            }
            r => return r,
        }
    }
}

/// Driver-side completion half of a split-phase batch. Boxed inside an
/// [`AdioRequest`]; drivers without real split-phase support never create
/// one (their requests are born complete).
pub trait PendingIo: Send {
    /// Block until the batch completes. Returns total bytes transferred.
    fn wait(self: Box<Self>, ctx: &ActorCtx) -> AdioResult<u64>;

    /// Nonblocking progress poll: true when [`Self::wait`] will not
    /// block. Advisory — drivers without completion polling return false.
    fn test(&mut self, _ctx: &ActorCtx) -> bool {
        false
    }
}

enum ReqState {
    Done(AdioResult<u64>),
    Pending(Box<dyn PendingIo>),
}

thread_local! {
    /// Split-phase batches outstanding on the calling actor (each rank
    /// actor runs on its own thread). Feeds the `adio.inflight` depth
    /// histogram; self-balancing because every request is waited.
    static INFLIGHT: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Completion handle for a nonblocking ADIO batch ([`AdioFile::iread_batch`]
/// / [`AdioFile::iwrite_batch`]): either born complete (eager drivers) or a
/// split-phase operation in flight that [`AdioRequest::wait`] collects.
#[must_use = "an AdioRequest must be waited, or its I/O may never complete"]
pub struct AdioRequest {
    state: ReqState,
}

impl AdioRequest {
    /// A request that completed eagerly at issue time.
    pub fn ready(result: AdioResult<u64>) -> AdioRequest {
        AdioRequest {
            state: ReqState::Done(result),
        }
    }

    /// A genuinely in-flight split-phase request. Records the calling
    /// actor's outstanding depth in the `adio.inflight` histogram.
    pub fn pending(ctx: &ActorCtx, io: Box<dyn PendingIo>) -> AdioRequest {
        let depth = INFLIGHT.with(|d| {
            d.set(d.get() + 1);
            d.get()
        });
        ctx.metrics().histogram("adio.inflight").record(depth);
        AdioRequest {
            state: ReqState::Pending(io),
        }
    }

    /// Block until the I/O completes; returns total bytes transferred
    /// (for writes, the bytes written).
    pub fn wait(self, ctx: &ActorCtx) -> AdioResult<u64> {
        match self.state {
            ReqState::Done(r) => r,
            ReqState::Pending(io) => {
                INFLIGHT.with(|d| d.set(d.get().saturating_sub(1)));
                io.wait(ctx)
            }
        }
    }

    /// Nonblocking completion poll (`MPI_Test` shape): true when
    /// [`Self::wait`] will not block. Drivers that can make progress here
    /// do (DAFS drains arrived VIA completions and posts freed credits);
    /// others conservatively report false.
    pub fn test(&mut self, ctx: &ActorCtx) -> bool {
        match &mut self.state {
            ReqState::Done(_) => true,
            ReqState::Pending(io) => io.test(ctx),
        }
    }
}

/// An open file as seen by the MPI-IO core.
pub trait AdioFile: Send + Sync {
    /// Read `len` bytes at `off` into `dst`; returns bytes read (short at
    /// EOF).
    fn read_contig(&self, ctx: &ActorCtx, off: u64, dst: VirtAddr, len: u64) -> AdioResult<u64>;

    /// Write `len` bytes at `off` from `src`.
    fn write_contig(&self, ctx: &ActorCtx, off: u64, src: VirtAddr, len: u64) -> AdioResult<()>;

    /// Batched reads; default loops. Drivers with pipelining override.
    fn read_batch(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioResult<u64> {
        let mut total = 0;
        for (off, dst, len) in reqs {
            total += self.read_contig(ctx, *off, *dst, *len)?;
        }
        Ok(total)
    }

    /// Batched writes; default loops.
    fn write_batch(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioResult<()> {
        for (off, src, len) in reqs {
            self.write_contig(ctx, *off, *src, *len)?;
        }
        Ok(())
    }

    /// True when this open file ships a sorted batch of ranges as
    /// wire-level vectored (list) requests — [`AdioFile::read_list`] et
    /// al. are real ops, not loops. The DAFS drivers answer per the
    /// `dafs_listio` hint captured at open; everything else says false and
    /// the MPI-IO core keeps data sieving.
    fn list_io_enabled(&self) -> bool {
        false
    }

    /// Vectored batched reads: ship `reqs` — sorted ascending and
    /// non-overlapping on both the file-offset and buffer-address axes —
    /// as one list request per credit-window chunk. Returns total bytes
    /// read. The default (and any unsorted batch) falls back to the
    /// contiguous batch path.
    fn read_list(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioResult<u64> {
        self.read_batch(ctx, reqs)
    }

    /// Vectored batched writes; see [`AdioFile::read_list`].
    fn write_list(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioResult<()> {
        self.write_batch(ctx, reqs)
    }

    /// Nonblocking vectored batched reads; the split-phase analogue of
    /// [`AdioFile::read_list`]. Default completes eagerly.
    fn iread_list(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioRequest {
        self.iread_batch(ctx, reqs)
    }

    /// Nonblocking vectored batched writes. Default completes eagerly.
    fn iwrite_list(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioRequest {
        self.iwrite_batch(ctx, reqs)
    }

    /// Nonblocking batched reads: issue the batch and return a handle the
    /// caller overlaps work against before waiting. Default completes
    /// eagerly (blocking) for drivers without split-phase support. At
    /// most one nonblocking batch may be outstanding per file handle (the
    /// DAFS driver shares one credit window per session).
    fn iread_batch(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioRequest {
        AdioRequest::ready(self.read_batch(ctx, reqs))
    }

    /// Nonblocking batched writes; the handle resolves to total bytes
    /// written. Default completes eagerly.
    fn iwrite_batch(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioRequest {
        let total: u64 = reqs.iter().map(|(_, _, len)| *len).sum();
        AdioRequest::ready(self.write_batch(ctx, reqs).map(|_| total))
    }

    /// Current file size.
    fn get_size(&self, ctx: &ActorCtx) -> AdioResult<u64>;

    /// Truncate / extend.
    fn set_size(&self, ctx: &ActorCtx, size: u64) -> AdioResult<()>;

    /// Flush to stable storage (`MPI_File_sync`).
    fn flush(&self, ctx: &ActorCtx) -> AdioResult<()>;

    /// True when this handle can serve collective window I/O through a
    /// lease-coherent client cache (the `romio_cb_cache` hint): two-phase
    /// aggregators then write aggregated windows via [`Self::write_contig`]
    /// so the bytes buffer dirty and drain on the coalesced write-back
    /// flush, and serve exchange reads from leased pages via
    /// [`Self::read_contig`]. Default: no cache, keep the list/batch path.
    fn cache_collective(&self) -> bool {
        false
    }

    /// Atomically advance the shared file pointer by `nbytes`, returning
    /// its previous value. `Err(NotSupported)` where the filesystem has no
    /// locking primitive.
    fn shared_fetch_add(&self, _ctx: &ActorCtx, _nbytes: u64) -> AdioResult<u64> {
        Err(AdioError::NotSupported)
    }

    /// Reset the shared file pointer (collective open / seek_shared).
    fn shared_set(&self, _ctx: &ActorCtx, _value: u64) -> AdioResult<()> {
        Err(AdioError::NotSupported)
    }

    /// Acquire the whole-file lock (needed by read-modify-write data
    /// sieving; `Err(NotSupported)` on filesystems without locks, where
    /// sieved writes must fall back to per-range writes).
    fn lock_file(&self, _ctx: &ActorCtx) -> AdioResult<()> {
        Err(AdioError::NotSupported)
    }

    /// Release the whole-file lock.
    fn unlock_file(&self, _ctx: &ActorCtx) -> AdioResult<()> {
        Err(AdioError::NotSupported)
    }
}

/// A mounted filesystem that can open [`AdioFile`]s.
pub trait AdioFs: Send + Sync {
    /// Open (optionally creating) `path` relative to the root. Creates
    /// missing parent directories when `create` is set (convenience beyond
    /// POSIX, used by the harnesses).
    fn open(&self, ctx: &ActorCtx, path: &str, create: bool) -> AdioResult<Arc<dyn AdioFile>>;

    /// Open with the application's `MPI_Info` hints in scope. Drivers that
    /// interpret layout hints (the striped driver reads `striping_factor`
    /// / `striping_unit`) override this; the default ignores the hints.
    fn open_with_hints(
        &self,
        ctx: &ActorCtx,
        path: &str,
        create: bool,
        _hints: &crate::hints::Hints,
    ) -> AdioResult<Arc<dyn AdioFile>> {
        self.open(ctx, path, create)
    }

    /// Remove a file.
    fn delete(&self, ctx: &ActorCtx, path: &str) -> AdioResult<()>;

    /// Which driver this is.
    fn kind(&self) -> DriverKind;
}

// ---------------------------------------------------------------------------
// DAFS driver
// ---------------------------------------------------------------------------

/// ADIO over a DAFS session.
pub struct DafsAdio {
    client: Arc<DafsClient>,
}

impl DafsAdio {
    /// Wrap an established session.
    pub fn new(client: Arc<DafsClient>) -> DafsAdio {
        DafsAdio { client }
    }

    fn resolve_dir(
        &self,
        ctx: &ActorCtx,
        path: &str,
        create: bool,
    ) -> AdioResult<(NodeId, String)> {
        dafs_resolve_dir(&self.client, ctx, path, create)
    }
}

/// Walk `path`'s directory components on one DAFS session, creating
/// missing directories when `create` is set; returns the parent directory
/// and the final component.
fn dafs_resolve_dir(
    client: &DafsClient,
    ctx: &ActorCtx,
    path: &str,
    create: bool,
) -> AdioResult<(NodeId, String)> {
    let mut parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
    let name = parts.pop().ok_or(AdioError::NoSuchFile)?.to_string();
    let mut dir = memfs::ROOT_ID;
    for part in parts {
        dir = match client.lookup(ctx, dir, part) {
            Ok(a) => a.id,
            Err(DafsError::Status(dafs::DafsStatus::NoEnt)) if create => {
                match client.mkdir(ctx, dir, part) {
                    Ok(a) => a.id,
                    // Another rank created it concurrently.
                    Err(DafsError::Status(dafs::DafsStatus::Exists)) => {
                        client.lookup(ctx, dir, part).map_err(AdioError::from)?.id
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            Err(e) => return Err(e.into()),
        };
    }
    Ok((dir, name))
}

/// Look up (optionally creating) `name` in `dir`, racing politely with
/// concurrent ranks.
fn dafs_open_node(
    client: &DafsClient,
    ctx: &ActorCtx,
    dir: NodeId,
    name: &str,
    create: bool,
) -> AdioResult<NodeId> {
    match client.lookup(ctx, dir, name) {
        Ok(a) => Ok(a.id),
        Err(DafsError::Status(dafs::DafsStatus::NoEnt)) if create => {
            match client.create(ctx, dir, name) {
                Ok(a) => Ok(a.id),
                // Another rank won the race; open theirs.
                Err(DafsError::Status(dafs::DafsStatus::Exists)) => {
                    Ok(client.lookup(ctx, dir, name).map_err(AdioError::from)?.id)
                }
                Err(e) => Err(e.into()),
            }
        }
        Err(e) => Err(e.into()),
    }
}

/// Open (creating and zero-initializing if absent) the hidden
/// shared-pointer companion of `name` in `dir`.
fn dafs_open_shfp(
    client: &DafsClient,
    ctx: &ActorCtx,
    dir: NodeId,
    name: &str,
) -> AdioResult<NodeId> {
    let shfp_name = format!("{name}{SHFP_SUFFIX}");
    match client.lookup(ctx, dir, &shfp_name) {
        Ok(a) => Ok(a.id),
        Err(DafsError::Status(dafs::DafsStatus::NoEnt)) => {
            match client.create(ctx, dir, &shfp_name) {
                Ok(a) => {
                    client
                        .write_bytes(ctx, a.id, 0, &0u64.to_le_bytes())
                        .map_err(AdioError::from)?;
                    Ok(a.id)
                }
                Err(DafsError::Status(dafs::DafsStatus::Exists)) => Ok(client
                    .lookup(ctx, dir, &shfp_name)
                    .map_err(AdioError::from)?
                    .id),
                Err(e) => Err(e.into()),
            }
        }
        Err(e) => Err(e.into()),
    }
}

/// The ROMIO shared-pointer recipe — a DAFS file lock around a
/// read-modify-write of the hidden pointer file.
fn dafs_shfp_fetch_add(
    client: &DafsClient,
    ctx: &ActorCtx,
    shfp: NodeId,
    nbytes: u64,
) -> AdioResult<u64> {
    client.lock(ctx, shfp).map_err(AdioError::from)?;
    let result = (|| -> AdioResult<u64> {
        let cur = client
            .read_to_vec(ctx, shfp, 0, 8)
            .map_err(AdioError::from)?;
        let old = u64::from_le_bytes(
            cur.as_slice()
                .try_into()
                .map_err(|_| AdioError::Io(IoFault::Protocol))?,
        );
        client
            .write_bytes(ctx, shfp, 0, &(old + nbytes).to_le_bytes())
            .map_err(AdioError::from)?;
        Ok(old)
    })();
    client.unlock(ctx, shfp).map_err(AdioError::from)?;
    result
}

/// Reset the shared pointer under the same lock.
fn dafs_shfp_set(client: &DafsClient, ctx: &ActorCtx, shfp: NodeId, value: u64) -> AdioResult<()> {
    client.lock(ctx, shfp).map_err(AdioError::from)?;
    let r = client
        .write_bytes(ctx, shfp, 0, &value.to_le_bytes())
        .map(|_| ())
        .map_err(AdioError::from);
    client.unlock(ctx, shfp).map_err(AdioError::from)?;
    r
}

/// The hidden shared-file-pointer companion file suffix.
const SHFP_SUFFIX: &str = ".shfp";

/// Re-express a sorted batch of contiguous requests as the segments of one
/// vectored request, relative to the lowest buffer address. `None` when
/// the batch isn't ascending and non-overlapping on both the file-offset
/// and buffer-address axes — the caller keeps the contiguous batch path.
fn list_segments(reqs: &[(u64, VirtAddr, u64)]) -> Option<(VirtAddr, Vec<ListSeg>)> {
    let base = reqs.first()?.1;
    let mut segs = Vec::with_capacity(reqs.len());
    for (off, addr, len) in reqs {
        let rel = addr.as_u64().checked_sub(base.as_u64())?;
        segs.push((*off, *len, rel));
    }
    dafs::list_acceptable(&segs).then_some((base, segs))
}

/// Whether the `dafs_listio` hint turns list I/O on. `Automatic` means on:
/// the DAFS wire protocol always has the ops, so only an explicit
/// `disable` keeps sieving.
fn listio_on(hints: &crate::hints::Hints) -> bool {
    hints.dafs_listio != crate::hints::TriState::Disable
}

/// Whether the `dafs_cache` hint turns the lease-coherent client cache on.
/// Unlike `dafs_listio`, `Automatic` means OFF: caching acquires leases and
/// changes the op stream, so it is strictly opt-in — only an explicit
/// `enable` routes reads and size polls through the cached entry points.
fn cache_on(hints: &crate::hints::Hints) -> bool {
    hints.dafs_cache == crate::hints::TriState::Enable
}

/// Whether the `dafs_qos` hint declares this job as a QoS tenant. Like
/// `dafs_cache`, `Automatic` means OFF: a declaration extends the Hello
/// wire exchange, so it is strictly opt-in via `enable`.
fn qos_on(hints: &crate::hints::Hints) -> bool {
    hints.dafs_qos == crate::hints::TriState::Enable
}

/// Declare the session's QoS tenant binding at open when `dafs_qos` is
/// enabled. The tenant id is the client's stable id (each rank's session
/// is its own tenant); the weight comes from `dafs_tenant_weight`. Errors
/// are swallowed — a FIFO or legacy server simply ignores the extension,
/// and an open must not fail over a scheduling hint.
fn declare_qos(client: &DafsClient, ctx: &ActorCtx, hints: &crate::hints::Hints) {
    if qos_on(hints) {
        let _ = client.declare_tenant(ctx, client.client_id(), hints.dafs_tenant_weight);
    }
}

struct DafsFileHandle {
    client: Arc<DafsClient>,
    fh: NodeId,
    /// Hidden shared-pointer file (created lazily at open).
    shfp: NodeId,
    /// `dafs_listio` hint captured at open: route sorted noncontiguous
    /// batches through the wire-level list ops.
    listio: bool,
    /// `dafs_cache` hint captured at open: route contiguous reads and size
    /// polls through the lease-coherent client cache.
    cached: bool,
}

impl AdioFs for DafsAdio {
    fn open(&self, ctx: &ActorCtx, path: &str, create: bool) -> AdioResult<Arc<dyn AdioFile>> {
        self.open_with_hints(ctx, path, create, &crate::hints::Hints::default())
    }

    fn open_with_hints(
        &self,
        ctx: &ActorCtx,
        path: &str,
        create: bool,
        hints: &crate::hints::Hints,
    ) -> AdioResult<Arc<dyn AdioFile>> {
        declare_qos(&self.client, ctx, hints);
        let (dir, name) = self.resolve_dir(ctx, path, create)?;
        let fh = dafs_open_node(&self.client, ctx, dir, &name, create)?;
        // Shared-pointer companion.
        let shfp = dafs_open_shfp(&self.client, ctx, dir, &name)?;
        Ok(Arc::new(DafsFileHandle {
            client: self.client.clone(),
            fh,
            shfp,
            listio: listio_on(hints),
            cached: cache_on(hints),
        }))
    }

    fn delete(&self, ctx: &ActorCtx, path: &str) -> AdioResult<()> {
        let (dir, name) = self.resolve_dir(ctx, path, false)?;
        self.client
            .remove(ctx, dir, &name)
            .map_err(AdioError::from)?;
        let _ = self
            .client
            .remove(ctx, dir, &format!("{name}{SHFP_SUFFIX}"));
        Ok(())
    }

    fn kind(&self) -> DriverKind {
        DriverKind::Dafs
    }
}

impl AdioFile for DafsFileHandle {
    fn read_contig(&self, ctx: &ActorCtx, off: u64, dst: VirtAddr, len: u64) -> AdioResult<u64> {
        with_retries(ctx, || {
            if self.cached {
                self.client.read_cached(ctx, self.fh, off, dst, len)
            } else {
                self.client.read(ctx, self.fh, off, dst, len)
            }
            .map_err(AdioError::from)
        })
    }

    fn write_contig(&self, ctx: &ActorCtx, off: u64, src: VirtAddr, len: u64) -> AdioResult<()> {
        with_retries(ctx, || {
            if self.cached {
                self.client.write_cached(ctx, self.fh, off, src, len)
            } else {
                self.client.write(ctx, self.fh, off, src, len)
            }
            .map(|_| ())
            .map_err(AdioError::from)
        })
    }

    fn read_batch(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioResult<u64> {
        let rs: Vec<ReadReq> = reqs
            .iter()
            .map(|(off, dst, len)| ReadReq {
                fh: self.fh,
                off: *off,
                dst: *dst,
                len: *len,
            })
            .collect();
        with_retries(ctx, || {
            let mut total = 0;
            for r in self.client.read_batch(ctx, &rs) {
                total += r.map_err(AdioError::from)?;
            }
            Ok(total)
        })
    }

    fn write_batch(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioResult<()> {
        let ws: Vec<WriteReq> = reqs
            .iter()
            .map(|(off, src, len)| WriteReq {
                fh: self.fh,
                off: *off,
                src: *src,
                len: *len,
            })
            .collect();
        with_retries(ctx, || {
            for r in self.client.write_batch(ctx, &ws) {
                r.map_err(AdioError::from)?;
            }
            Ok(())
        })
    }

    fn list_io_enabled(&self) -> bool {
        self.listio
    }

    fn read_list(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioResult<u64> {
        let Some((base, segs)) = self.listio.then(|| list_segments(reqs)).flatten() else {
            return self.read_batch(ctx, reqs);
        };
        let lr = ListReq {
            fh: self.fh,
            segs,
            buf: base,
        };
        with_retries(ctx, || {
            let b = self
                .client
                .read_list_batch_begin(ctx, std::slice::from_ref(&lr));
            let mut total = 0;
            for r in self.client.batch_finish(ctx, b) {
                total += r.map_err(AdioError::from)?;
            }
            Ok(total)
        })
    }

    fn write_list(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioResult<()> {
        let Some((base, segs)) = self.listio.then(|| list_segments(reqs)).flatten() else {
            return self.write_batch(ctx, reqs);
        };
        let lr = ListReq {
            fh: self.fh,
            segs,
            buf: base,
        };
        with_retries(ctx, || {
            let b = self
                .client
                .write_list_batch_begin(ctx, std::slice::from_ref(&lr));
            for r in self.client.batch_finish(ctx, b) {
                r.map_err(AdioError::from)?;
            }
            Ok(())
        })
    }

    fn iread_list(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioRequest {
        let Some((base, segs)) = self.listio.then(|| list_segments(reqs)).flatten() else {
            return self.iread_batch(ctx, reqs);
        };
        let lr = ListReq {
            fh: self.fh,
            segs,
            buf: base,
        };
        let batch = self
            .client
            .read_list_batch_begin(ctx, std::slice::from_ref(&lr));
        // Residual-transient fallback re-runs the same ranges through the
        // contiguous batch path — byte-identical placement.
        AdioRequest::pending(
            ctx,
            Box::new(DafsPending {
                client: self.client.clone(),
                fh: self.fh,
                batch,
                reqs: reqs.to_vec(),
                write: false,
            }),
        )
    }

    fn iwrite_list(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioRequest {
        let Some((base, segs)) = self.listio.then(|| list_segments(reqs)).flatten() else {
            return self.iwrite_batch(ctx, reqs);
        };
        let lr = ListReq {
            fh: self.fh,
            segs,
            buf: base,
        };
        let batch = self
            .client
            .write_list_batch_begin(ctx, std::slice::from_ref(&lr));
        AdioRequest::pending(
            ctx,
            Box::new(DafsPending {
                client: self.client.clone(),
                fh: self.fh,
                batch,
                reqs: reqs.to_vec(),
                write: true,
            }),
        )
    }

    fn iread_batch(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioRequest {
        let rs: Vec<ReadReq> = reqs
            .iter()
            .map(|(off, dst, len)| ReadReq {
                fh: self.fh,
                off: *off,
                dst: *dst,
                len: *len,
            })
            .collect();
        let batch = self.client.read_batch_begin(ctx, &rs);
        AdioRequest::pending(
            ctx,
            Box::new(DafsPending {
                client: self.client.clone(),
                fh: self.fh,
                batch,
                reqs: reqs.to_vec(),
                write: false,
            }),
        )
    }

    fn iwrite_batch(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioRequest {
        let ws: Vec<WriteReq> = reqs
            .iter()
            .map(|(off, src, len)| WriteReq {
                fh: self.fh,
                off: *off,
                src: *src,
                len: *len,
            })
            .collect();
        let batch = self.client.write_batch_begin(ctx, &ws);
        AdioRequest::pending(
            ctx,
            Box::new(DafsPending {
                client: self.client.clone(),
                fh: self.fh,
                batch,
                reqs: reqs.to_vec(),
                write: true,
            }),
        )
    }

    fn get_size(&self, ctx: &ActorCtx) -> AdioResult<u64> {
        let attr = if self.cached {
            self.client.getattr_cached(ctx, self.fh)
        } else {
            self.client.getattr(ctx, self.fh)
        };
        Ok(attr.map_err(AdioError::from)?.size)
    }

    fn set_size(&self, ctx: &ActorCtx, size: u64) -> AdioResult<()> {
        self.client
            .truncate(ctx, self.fh, size)
            .map(|_| ())
            .map_err(AdioError::from)
    }

    fn flush(&self, ctx: &ActorCtx) -> AdioResult<()> {
        if self.cached {
            // Drain dirty write-back pages through the coalesced
            // `WriteList` flush, then hand the lease back: `MPI_File_sync`
            // is the coherence point of MPI's weak consistency model, so
            // the next access revalidates and another rank's conflicting
            // op never parks behind a holder that is blocked in a
            // collective. A clean handle with no lease syncs wire-free —
            // the server-side `Flush` commit round trip only ships when
            // data actually moved.
            let flushed = self.client.cache_sync(ctx).map_err(AdioError::from)?;
            self.client
                .cache_release(ctx, self.fh)
                .map_err(AdioError::from)?;
            if flushed == 0 {
                return Ok(());
            }
        }
        self.client.flush(ctx, self.fh).map_err(AdioError::from)
    }

    fn cache_collective(&self) -> bool {
        self.cached
    }

    fn shared_fetch_add(&self, ctx: &ActorCtx, nbytes: u64) -> AdioResult<u64> {
        dafs_shfp_fetch_add(&self.client, ctx, self.shfp, nbytes)
    }

    fn shared_set(&self, ctx: &ActorCtx, value: u64) -> AdioResult<()> {
        dafs_shfp_set(&self.client, ctx, self.shfp, value)
    }

    fn lock_file(&self, ctx: &ActorCtx) -> AdioResult<()> {
        self.client.lock(ctx, self.fh).map_err(AdioError::from)
    }

    fn unlock_file(&self, ctx: &ActorCtx) -> AdioResult<()> {
        self.client.unlock(ctx, self.fh).map_err(AdioError::from)
    }
}

/// A split-phase DAFS batch in flight, plus what is needed to re-run it
/// synchronously if the session dies (idempotent: reads re-fetch, writes
/// re-put the same bytes at the same offsets).
struct DafsPending {
    client: Arc<DafsClient>,
    fh: NodeId,
    batch: DafsBatch,
    reqs: Vec<(u64, VirtAddr, u64)>,
    write: bool,
}

impl PendingIo for DafsPending {
    fn test(&mut self, ctx: &ActorCtx) -> bool {
        self.client.batch_test(ctx, &mut self.batch)
    }

    fn wait(self: Box<Self>, ctx: &ActorCtx) -> AdioResult<u64> {
        let me = *self;
        let sum = |results: Vec<dafs::DafsResult<u64>>| -> AdioResult<u64> {
            let mut total = 0;
            for r in results {
                total += r.map_err(AdioError::from)?;
            }
            Ok(total)
        };
        match sum(me.client.batch_finish(ctx, me.batch)) {
            Err(e) if transient(&e) => {
                // Residual transient failure after the batch's own inline
                // recovery: fall back to the synchronous batch path, which
                // carries the usual ADIO retry budget.
                ctx.metrics().counter("adio.retries").inc();
                with_retries(ctx, || {
                    let results = if me.write {
                        let ws: Vec<WriteReq> = me
                            .reqs
                            .iter()
                            .map(|(off, src, len)| WriteReq {
                                fh: me.fh,
                                off: *off,
                                src: *src,
                                len: *len,
                            })
                            .collect();
                        me.client.write_batch(ctx, &ws)
                    } else {
                        let rs: Vec<ReadReq> = me
                            .reqs
                            .iter()
                            .map(|(off, dst, len)| ReadReq {
                                fh: me.fh,
                                off: *off,
                                dst: *dst,
                                len: *len,
                            })
                            .collect();
                        me.client.read_batch(ctx, &rs)
                    };
                    sum(results)
                })
            }
            r => r,
        }
    }
}

// ---------------------------------------------------------------------------
// Striped DAFS driver
// ---------------------------------------------------------------------------

/// Default stripe size when no `striping_unit` hint is given (the classic
/// ROMIO/PVFS default).
const DEFAULT_STRIPE: u64 = 64 << 10;

/// ADIO over several DAFS sessions, striping each file round-robin across
/// the servers ([`dafs::DafsStripedFile`]). The `striping_factor` hint
/// selects how many of the available servers a file stripes over (0 =
/// all), `striping_unit` the block size — both honored at open time, PVFS
/// style, so an existing file must be reopened with the layout it was
/// created with.
pub struct DafsStripedAdio {
    clients: Vec<Arc<DafsClient>>,
}

impl DafsStripedAdio {
    /// Wrap one established session per server, in server order.
    pub fn new(clients: Vec<Arc<DafsClient>>) -> DafsStripedAdio {
        assert!(
            !clients.is_empty(),
            "striped ADIO needs at least one server"
        );
        DafsStripedAdio { clients }
    }

    /// Number of servers available to stripe over.
    pub fn servers(&self) -> usize {
        self.clients.len()
    }
}

struct DafsStripedFileHandle {
    file: Arc<DafsStripedFile>,
    /// Shared-pointer companion, on server 0 (the metadata authority).
    shfp: NodeId,
    /// `dafs_listio` hint captured at open.
    listio: bool,
    /// `dafs_cache` hint captured at open.
    cached: bool,
}

impl AdioFs for DafsStripedAdio {
    fn open(&self, ctx: &ActorCtx, path: &str, create: bool) -> AdioResult<Arc<dyn AdioFile>> {
        self.open_with_hints(ctx, path, create, &crate::hints::Hints::default())
    }

    fn open_with_hints(
        &self,
        ctx: &ActorCtx,
        path: &str,
        create: bool,
        hints: &crate::hints::Hints,
    ) -> AdioResult<Arc<dyn AdioFile>> {
        let factor = if hints.striping_factor == 0 {
            self.clients.len()
        } else {
            hints.striping_factor.min(self.clients.len())
        };
        let stripe = if hints.striping_unit == 0 {
            DEFAULT_STRIPE
        } else {
            hints.striping_unit
        };
        // One piece file per server, all under the same path (each server
        // has its own namespace, so the paths never collide).
        let mut clients = Vec::with_capacity(factor);
        let mut fhs = Vec::with_capacity(factor);
        let mut shfp = None;
        for c in &self.clients[..factor] {
            declare_qos(c, ctx, hints);
            let (dir, name) = dafs_resolve_dir(c, ctx, path, create)?;
            fhs.push(dafs_open_node(c, ctx, dir, &name, create)?);
            clients.push(c.clone());
            if shfp.is_none() {
                shfp = Some(dafs_open_shfp(c, ctx, dir, &name)?);
            }
        }
        Ok(Arc::new(DafsStripedFileHandle {
            file: Arc::new(DafsStripedFile::new(clients, fhs, stripe)),
            shfp: shfp.expect("factor >= 1"),
            listio: listio_on(hints),
            cached: cache_on(hints),
        }))
    }

    fn delete(&self, ctx: &ActorCtx, path: &str) -> AdioResult<()> {
        // Remove the piece on every server: the file may have been created
        // with any striping factor up to the server count.
        let mut found = false;
        for (s, c) in self.clients.iter().enumerate() {
            let (dir, name) = dafs_resolve_dir(c, ctx, path, false)?;
            match c.remove(ctx, dir, &name) {
                Ok(()) => found = true,
                Err(DafsError::Status(dafs::DafsStatus::NoEnt)) => {}
                Err(e) => return Err(e.into()),
            }
            if s == 0 {
                let _ = c.remove(ctx, dir, &format!("{name}{SHFP_SUFFIX}"));
            }
        }
        if found {
            Ok(())
        } else {
            Err(AdioError::NoSuchFile)
        }
    }

    fn kind(&self) -> DriverKind {
        DriverKind::DafsStriped
    }
}

impl AdioFile for DafsStripedFileHandle {
    fn read_contig(&self, ctx: &ActorCtx, off: u64, dst: VirtAddr, len: u64) -> AdioResult<u64> {
        with_retries(ctx, || {
            if self.cached {
                self.file.read_cached(ctx, off, dst, len)
            } else {
                self.file.read(ctx, off, dst, len)
            }
            .map_err(AdioError::from)
        })
    }

    fn write_contig(&self, ctx: &ActorCtx, off: u64, src: VirtAddr, len: u64) -> AdioResult<()> {
        with_retries(ctx, || {
            if self.cached {
                self.file.write_cached(ctx, off, src, len)
            } else {
                self.file.write(ctx, off, src, len)
            }
            .map_err(AdioError::from)
        })
    }

    fn read_batch(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioResult<u64> {
        with_retries(ctx, || {
            let b = self.file.read_batch_begin(ctx, reqs);
            self.file.batch_finish(ctx, b).map_err(AdioError::from)
        })
    }

    fn write_batch(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioResult<()> {
        with_retries(ctx, || {
            let b = self.file.write_batch_begin(ctx, reqs);
            self.file
                .batch_finish(ctx, b)
                .map(|_| ())
                .map_err(AdioError::from)
        })
    }

    fn list_io_enabled(&self) -> bool {
        self.listio
    }

    fn read_list(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioResult<u64> {
        let Some((base, segs)) = self.listio.then(|| list_segments(reqs)).flatten() else {
            return self.read_batch(ctx, reqs);
        };
        with_retries(ctx, || {
            let b = self
                .file
                .read_list_batch_begin(ctx, &[(segs.clone(), base)]);
            self.file.batch_finish(ctx, b).map_err(AdioError::from)
        })
    }

    fn write_list(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioResult<()> {
        let Some((base, segs)) = self.listio.then(|| list_segments(reqs)).flatten() else {
            return self.write_batch(ctx, reqs);
        };
        with_retries(ctx, || {
            let b = self
                .file
                .write_list_batch_begin(ctx, &[(segs.clone(), base)]);
            self.file
                .batch_finish(ctx, b)
                .map(|_| ())
                .map_err(AdioError::from)
        })
    }

    fn iread_list(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioRequest {
        let Some((base, segs)) = self.listio.then(|| list_segments(reqs)).flatten() else {
            return self.iread_batch(ctx, reqs);
        };
        let batch = self.file.read_list_batch_begin(ctx, &[(segs, base)]);
        AdioRequest::pending(
            ctx,
            Box::new(DafsStripedPending {
                file: self.file.clone(),
                batch,
                reqs: reqs.to_vec(),
                write: false,
            }),
        )
    }

    fn iwrite_list(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioRequest {
        let Some((base, segs)) = self.listio.then(|| list_segments(reqs)).flatten() else {
            return self.iwrite_batch(ctx, reqs);
        };
        let batch = self.file.write_list_batch_begin(ctx, &[(segs, base)]);
        AdioRequest::pending(
            ctx,
            Box::new(DafsStripedPending {
                file: self.file.clone(),
                batch,
                reqs: reqs.to_vec(),
                write: true,
            }),
        )
    }

    fn iread_batch(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioRequest {
        let batch = self.file.read_batch_begin(ctx, reqs);
        AdioRequest::pending(
            ctx,
            Box::new(DafsStripedPending {
                file: self.file.clone(),
                batch,
                reqs: reqs.to_vec(),
                write: false,
            }),
        )
    }

    fn iwrite_batch(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioRequest {
        let batch = self.file.write_batch_begin(ctx, reqs);
        AdioRequest::pending(
            ctx,
            Box::new(DafsStripedPending {
                file: self.file.clone(),
                batch,
                reqs: reqs.to_vec(),
                write: true,
            }),
        )
    }

    fn get_size(&self, ctx: &ActorCtx) -> AdioResult<u64> {
        if self.cached {
            self.file.get_size_cached(ctx).map_err(AdioError::from)
        } else {
            self.file.get_size(ctx).map_err(AdioError::from)
        }
    }

    fn set_size(&self, ctx: &ActorCtx, size: u64) -> AdioResult<()> {
        self.file.set_size(ctx, size).map_err(AdioError::from)
    }

    fn flush(&self, ctx: &ActorCtx) -> AdioResult<()> {
        if self.cached {
            // Per-server coalesced write-back drain, then lease handback
            // (sync is the coherence point); wire-free when clean.
            let flushed = self.file.cache_sync(ctx).map_err(AdioError::from)?;
            self.file.cache_release(ctx).map_err(AdioError::from)?;
            if flushed == 0 {
                return Ok(());
            }
        }
        self.file.flush(ctx).map_err(AdioError::from)
    }

    fn cache_collective(&self) -> bool {
        self.cached
    }

    fn shared_fetch_add(&self, ctx: &ActorCtx, nbytes: u64) -> AdioResult<u64> {
        dafs_shfp_fetch_add(self.file.client(0), ctx, self.shfp, nbytes)
    }

    fn shared_set(&self, ctx: &ActorCtx, value: u64) -> AdioResult<()> {
        dafs_shfp_set(self.file.client(0), ctx, self.shfp, value)
    }

    fn lock_file(&self, ctx: &ActorCtx) -> AdioResult<()> {
        self.file.lock(ctx).map_err(AdioError::from)
    }

    fn unlock_file(&self, ctx: &ActorCtx) -> AdioResult<()> {
        self.file.unlock(ctx).map_err(AdioError::from)
    }
}

/// A split-phase striped batch in flight: per-server [`DafsBatch`]es plus
/// what is needed to re-run the whole batch synchronously if a session
/// dies (idempotent, like [`DafsPending`]).
struct DafsStripedPending {
    file: Arc<DafsStripedFile>,
    batch: DafsStripedBatch,
    reqs: Vec<(u64, VirtAddr, u64)>,
    write: bool,
}

impl PendingIo for DafsStripedPending {
    fn test(&mut self, ctx: &ActorCtx) -> bool {
        self.file.batch_test(ctx, &mut self.batch)
    }

    fn wait(self: Box<Self>, ctx: &ActorCtx) -> AdioResult<u64> {
        let me = *self;
        match me.file.batch_finish(ctx, me.batch).map_err(AdioError::from) {
            Err(e) if transient(&e) => {
                // Residual transient failure after the per-session
                // recovery: re-run the batch synchronously with the usual
                // ADIO retry budget.
                ctx.metrics().counter("adio.retries").inc();
                with_retries(ctx, || {
                    let b = if me.write {
                        me.file.write_batch_begin(ctx, &me.reqs)
                    } else {
                        me.file.read_batch_begin(ctx, &me.reqs)
                    };
                    me.file.batch_finish(ctx, b).map_err(AdioError::from)
                })
            }
            r => r,
        }
    }
}

// ---------------------------------------------------------------------------
// NFS driver
// ---------------------------------------------------------------------------

/// ADIO over an NFS mount (the baseline).
pub struct NfsAdio {
    client: Arc<NfsClient>,
}

impl NfsAdio {
    /// Wrap an established mount.
    pub fn new(client: Arc<NfsClient>) -> NfsAdio {
        NfsAdio { client }
    }

    fn resolve_dir(
        &self,
        ctx: &ActorCtx,
        path: &str,
        create: bool,
    ) -> AdioResult<(NodeId, String)> {
        let mut parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
        let name = parts.pop().ok_or(AdioError::NoSuchFile)?.to_string();
        let mut dir = memfs::ROOT_ID;
        for part in parts {
            dir = match self.client.lookup(ctx, dir, part) {
                Ok(a) => a.id,
                Err(NfsError::Status(nfsv3::NfsStatus::NoEnt)) if create => {
                    match self.client.mkdir(ctx, dir, part) {
                        Ok(a) => a.id,
                        // Another rank created it concurrently.
                        Err(NfsError::Status(nfsv3::NfsStatus::Exist)) => {
                            self.client
                                .lookup(ctx, dir, part)
                                .map_err(AdioError::from)?
                                .id
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
                Err(e) => return Err(e.into()),
            };
        }
        Ok((dir, name))
    }
}

struct NfsFileHandle {
    client: Arc<NfsClient>,
    fh: NodeId,
    host: Host,
    host_cost: HostCost,
}

impl AdioFs for NfsAdio {
    fn open(&self, ctx: &ActorCtx, path: &str, create: bool) -> AdioResult<Arc<dyn AdioFile>> {
        let (dir, name) = self.resolve_dir(ctx, path, create)?;
        let attr = match self.client.lookup(ctx, dir, &name) {
            Ok(a) => a,
            Err(NfsError::Status(nfsv3::NfsStatus::NoEnt)) if create => {
                match self.client.create(ctx, dir, &name) {
                    Ok(a) => a,
                    Err(NfsError::Status(nfsv3::NfsStatus::Exist)) => self
                        .client
                        .lookup(ctx, dir, &name)
                        .map_err(AdioError::from)?,
                    Err(e) => return Err(e.into()),
                }
            }
            Err(e) => return Err(e.into()),
        };
        // The NFS client API is slice-based; remember the host for staging.
        Ok(Arc::new(NfsFileHandle {
            client: self.client.clone(),
            fh: attr.id,
            host: hostof(ctx),
            host_cost: HostCost::default(),
        }))
    }

    fn delete(&self, ctx: &ActorCtx, path: &str) -> AdioResult<()> {
        let (dir, name) = self.resolve_dir(ctx, path, false)?;
        self.client.remove(ctx, dir, &name).map_err(AdioError::from)
    }

    fn kind(&self) -> DriverKind {
        DriverKind::Nfs
    }
}

thread_local! {
    /// The host of the actor currently executing on this thread. Set by
    /// [`set_current_host`]; lets slice-based drivers find the simulated
    /// memory arena to stage through.
    static CURRENT_HOST: std::cell::RefCell<Option<Host>> = const { std::cell::RefCell::new(None) };
}

/// Declare the host the calling actor runs on (rank bootstrap calls this).
pub fn set_current_host(host: &Host) {
    CURRENT_HOST.with(|h| *h.borrow_mut() = Some(host.clone()));
}

fn hostof(_ctx: &ActorCtx) -> Host {
    CURRENT_HOST.with(|h| {
        h.borrow()
            .clone()
            .expect("set_current_host must be called in each rank actor")
    })
}

impl AdioFile for NfsFileHandle {
    fn read_contig(&self, ctx: &ActorCtx, off: u64, dst: VirtAddr, len: u64) -> AdioResult<u64> {
        let data = with_retries(ctx, || {
            self.client
                .read(ctx, self.fh, off, len)
                .map_err(AdioError::from)
        })?;
        self.host.mem.write(dst, &data);
        Ok(data.len() as u64)
    }

    fn write_contig(&self, ctx: &ActorCtx, off: u64, src: VirtAddr, len: u64) -> AdioResult<()> {
        let data = self.host.mem.read_vec(src, len as usize);
        with_retries(ctx, || {
            self.client
                .write(ctx, self.fh, off, &data)
                .map(|_| ())
                .map_err(AdioError::from)
        })
    }

    fn get_size(&self, ctx: &ActorCtx) -> AdioResult<u64> {
        // Revalidate rather than just refetch: MPI_File_get_size is a
        // consistency point, so a version change must also drop any pages
        // the NFS data cache holds for this file.
        Ok(self
            .client
            .revalidate_attr(ctx, self.fh)
            .map_err(AdioError::from)?
            .size)
    }

    fn set_size(&self, ctx: &ActorCtx, size: u64) -> AdioResult<()> {
        self.client
            .truncate(ctx, self.fh, size)
            .map(|_| ())
            .map_err(AdioError::from)
    }

    fn iread_batch(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioRequest {
        let ps = reqs
            .iter()
            .map(|(off, _, len)| self.client.read_begin(ctx, self.fh, *off, *len))
            .collect();
        AdioRequest::pending(
            ctx,
            Box::new(NfsPending {
                client: self.client.clone(),
                fh: self.fh,
                host: self.host.clone(),
                ops: NfsPendingOps::Read(ps),
                reqs: reqs.to_vec(),
            }),
        )
    }

    fn iwrite_batch(&self, ctx: &ActorCtx, reqs: &[(u64, VirtAddr, u64)]) -> AdioRequest {
        let ps = reqs
            .iter()
            .map(|(off, src, len)| {
                let data = self.host.mem.read_vec(*src, *len as usize);
                self.client.write_begin(ctx, self.fh, *off, &data)
            })
            .collect();
        AdioRequest::pending(
            ctx,
            Box::new(NfsPending {
                client: self.client.clone(),
                fh: self.fh,
                host: self.host.clone(),
                ops: NfsPendingOps::Write(ps),
                reqs: reqs.to_vec(),
            }),
        )
    }

    fn flush(&self, ctx: &ActorCtx) -> AdioResult<()> {
        // FILE_SYNC writes are already stable; COMMIT covers unstable mounts.
        let _ = self.host_cost;
        self.client.commit(ctx, self.fh).map_err(AdioError::from)
    }
}

enum NfsPendingOps {
    Read(Vec<NfsPendingRead>),
    Write(Vec<NfsPendingWrite>),
}

/// Split-phase NFS RPCs in flight, one pending set per batch entry, plus
/// what is needed to re-run the batch synchronously on a residual
/// transient failure.
struct NfsPending {
    client: Arc<NfsClient>,
    fh: NodeId,
    host: Host,
    ops: NfsPendingOps,
    reqs: Vec<(u64, VirtAddr, u64)>,
}

impl PendingIo for NfsPending {
    fn wait(self: Box<Self>, ctx: &ActorCtx) -> AdioResult<u64> {
        let NfsPending {
            client,
            fh,
            host,
            ops,
            reqs,
        } = *self;
        let is_write = matches!(ops, NfsPendingOps::Write(_));
        let first = match ops {
            NfsPendingOps::Read(ps) => {
                let mut total = 0;
                (|| {
                    for (p, (_, dst, _)) in ps.into_iter().zip(&reqs) {
                        let data = client.read_finish(ctx, p).map_err(AdioError::from)?;
                        host.mem.write(*dst, &data);
                        total += data.len() as u64;
                    }
                    Ok(total)
                })()
            }
            NfsPendingOps::Write(ps) => {
                let mut total = 0;
                (|| {
                    for (p, (_, _, len)) in ps.into_iter().zip(&reqs) {
                        client.write_finish(ctx, p).map_err(AdioError::from)?;
                        total += *len;
                    }
                    Ok(total)
                })()
            }
        };
        match first {
            Err(e) if transient(&e) => {
                // Residual transient failure after the RPC layer's own
                // retransmits: re-run the whole batch synchronously
                // (idempotent — reads re-fetch, writes re-put the same
                // bytes). The retransmit-armed sync path treats any
                // leftover replies on the stream as stale duplicates.
                ctx.metrics().counter("adio.retries").inc();
                with_retries(ctx, || {
                    let mut total = 0;
                    for (off, addr, len) in &reqs {
                        if is_write {
                            let data = host.mem.read_vec(*addr, *len as usize);
                            client
                                .write(ctx, fh, *off, &data)
                                .map_err(AdioError::from)?;
                            total += *len;
                        } else {
                            let data = client.read(ctx, fh, *off, *len).map_err(AdioError::from)?;
                            host.mem.write(*addr, &data);
                            total += data.len() as u64;
                        }
                    }
                    Ok(total)
                })
            }
            r => r,
        }
    }
}

// ---------------------------------------------------------------------------
// UFS driver (node-local)
// ---------------------------------------------------------------------------

/// Cost model for the node-local filesystem (memory-resident page cache).
#[derive(Debug, Clone, Copy)]
pub struct UfsCost {
    /// Syscall + VFS dispatch per operation.
    pub per_op: SimDuration,
    /// Host primitives (the page-cache copy).
    pub host: HostCost,
}

impl Default for UfsCost {
    fn default() -> Self {
        UfsCost {
            per_op: us(5),
            host: HostCost::default(),
        }
    }
}

/// ADIO over a node-local in-memory filesystem.
pub struct UfsAdio {
    fs: MemFs,
    host: Host,
    cost: UfsCost,
}

impl UfsAdio {
    /// A local filesystem on `host`.
    pub fn new(fs: MemFs, host: Host, cost: UfsCost) -> UfsAdio {
        UfsAdio { fs, host, cost }
    }
}

struct UfsFileHandle {
    fs: MemFs,
    fh: NodeId,
    host: Host,
    cost: UfsCost,
}

impl AdioFs for UfsAdio {
    fn open(&self, ctx: &ActorCtx, path: &str, create: bool) -> AdioResult<Arc<dyn AdioFile>> {
        self.host.compute(ctx, self.cost.per_op);
        let mut parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
        let name = parts.pop().ok_or(AdioError::NoSuchFile)?;
        let mut dir = memfs::ROOT_ID;
        for part in parts {
            dir = match self.fs.lookup(dir, part) {
                Ok(a) => a.id,
                Err(FsError::NotFound) if create => match self.fs.mkdir(dir, part) {
                    Ok(a) => a.id,
                    Err(FsError::Exists) => self.fs.lookup(dir, part).map_err(AdioError::from)?.id,
                    Err(e) => return Err(e.into()),
                },
                Err(e) => return Err(e.into()),
            };
        }
        let attr = match self.fs.lookup(dir, name) {
            Ok(a) => a,
            Err(FsError::NotFound) if create => {
                self.fs.create(dir, name).map_err(AdioError::from)?
            }
            Err(e) => return Err(e.into()),
        };
        Ok(Arc::new(UfsFileHandle {
            fs: self.fs.clone(),
            fh: attr.id,
            host: self.host.clone(),
            cost: self.cost,
        }))
    }

    fn delete(&self, ctx: &ActorCtx, path: &str) -> AdioResult<()> {
        self.host.compute(ctx, self.cost.per_op);
        let mut parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
        let name = parts.pop().ok_or(AdioError::NoSuchFile)?;
        let mut dir = memfs::ROOT_ID;
        for part in parts {
            dir = self.fs.lookup(dir, part).map_err(AdioError::from)?.id;
        }
        self.fs.remove(dir, name).map_err(AdioError::from)
    }

    fn kind(&self) -> DriverKind {
        DriverKind::Ufs
    }
}

impl AdioFile for UfsFileHandle {
    fn read_contig(&self, ctx: &ActorCtx, off: u64, dst: VirtAddr, len: u64) -> AdioResult<u64> {
        self.host
            .compute(ctx, self.cost.per_op + self.cost.host.copy(len));
        let data = self.fs.read(self.fh, off, len).map_err(AdioError::from)?;
        self.host.mem.write(dst, &data);
        Ok(data.len() as u64)
    }

    fn write_contig(&self, ctx: &ActorCtx, off: u64, src: VirtAddr, len: u64) -> AdioResult<()> {
        self.host
            .compute(ctx, self.cost.per_op + self.cost.host.copy(len));
        let data = self.host.mem.read_vec(src, len as usize);
        self.fs
            .write(self.fh, off, &data)
            .map(|_| ())
            .map_err(AdioError::from)
    }

    fn get_size(&self, ctx: &ActorCtx) -> AdioResult<u64> {
        self.host.compute(ctx, self.cost.per_op);
        Ok(self.fs.getattr(self.fh).map_err(AdioError::from)?.size)
    }

    fn set_size(&self, ctx: &ActorCtx, size: u64) -> AdioResult<()> {
        self.host.compute(ctx, self.cost.per_op);
        self.fs
            .setattr(self.fh, SetAttr { size: Some(size) })
            .map(|_| ())
            .map_err(AdioError::from)
    }

    fn flush(&self, ctx: &ActorCtx) -> AdioResult<()> {
        self.host.compute(ctx, self.cost.per_op);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Cluster, SimKernel};

    fn run_ufs(f: impl FnOnce(&ActorCtx, &UfsAdio, &Host) + Send + 'static) {
        let kernel = SimKernel::new();
        let cluster = Cluster::new();
        let host = cluster.add_host("node");
        let fs = MemFs::new();
        let h2 = host.clone();
        kernel.spawn("t", move |ctx| {
            set_current_host(&h2);
            let adio = UfsAdio::new(fs, h2.clone(), UfsCost::default());
            f(ctx, &adio, &h2);
        });
        kernel.run();
    }

    #[test]
    fn ufs_roundtrip_with_nested_path() {
        run_ufs(|ctx, adio, host| {
            let f = adio.open(ctx, "/a/b/c.dat", true).unwrap();
            let src = host.mem.alloc(1000);
            host.mem.fill(src, 1000, 0x11);
            f.write_contig(ctx, 0, src, 1000).unwrap();
            assert_eq!(f.get_size(ctx).unwrap(), 1000);
            let dst = host.mem.alloc(1000);
            assert_eq!(f.read_contig(ctx, 0, dst, 1000).unwrap(), 1000);
            assert_eq!(host.mem.read_vec(dst, 1000), vec![0x11; 1000]);
            f.set_size(ctx, 10).unwrap();
            assert_eq!(f.get_size(ctx).unwrap(), 10);
            f.flush(ctx).unwrap();
            adio.delete(ctx, "/a/b/c.dat").unwrap();
            assert!(matches!(
                adio.open(ctx, "/a/b/c.dat", false).err(),
                Some(AdioError::NoSuchFile)
            ));
        });
    }

    #[test]
    fn ufs_shared_pointer_unsupported() {
        run_ufs(|ctx, adio, _| {
            let f = adio.open(ctx, "/x", true).unwrap();
            assert_eq!(f.shared_fetch_add(ctx, 10), Err(AdioError::NotSupported));
        });
    }

    #[test]
    fn ufs_charges_cpu() {
        run_ufs(|ctx, adio, host| {
            let f = adio.open(ctx, "/x", true).unwrap();
            let src = host.mem.alloc(1 << 20);
            let before = host.cpu.busy();
            f.write_contig(ctx, 0, src, 1 << 20).unwrap();
            let spent = host.cpu.busy() - before;
            // 1 MiB copy at 400 MB/s ≈ 2.6 ms.
            assert!(spent.as_secs_f64() > 0.002, "UFS write cost {spent}");
        });
    }

    #[test]
    fn default_batch_loops() {
        run_ufs(|ctx, adio, host| {
            let f = adio.open(ctx, "/b", true).unwrap();
            let bufs: Vec<VirtAddr> = (0..4).map(|_| host.mem.alloc(100)).collect();
            for (i, b) in bufs.iter().enumerate() {
                host.mem.fill(*b, 100, i as u8 + 1);
            }
            let writes: Vec<(u64, VirtAddr, u64)> = bufs
                .iter()
                .enumerate()
                .map(|(i, b)| ((i * 100) as u64, *b, 100))
                .collect();
            f.write_batch(ctx, &writes).unwrap();
            let dst = host.mem.alloc(400);
            assert_eq!(f.read_contig(ctx, 0, dst, 400).unwrap(), 400);
            let got = host.mem.read_vec(dst, 400);
            for i in 0..4 {
                assert_eq!(got[i * 100], i as u8 + 1);
            }
        });
    }
}
