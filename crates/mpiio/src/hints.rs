//! MPI_Info hints, with the ROMIO-compatible key set.

use std::collections::BTreeMap;

/// Tri-state used by the `romio_cb_*` / `romio_ds_*` hints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Toggle {
    /// Use the optimization whenever it applies.
    Enable,
    /// Never use it.
    Disable,
    /// Let the implementation decide (the default).
    #[default]
    Automatic,
}

/// Parsed hints controlling the I/O strategies.
#[derive(Debug, Clone)]
pub struct Hints {
    /// Number of collective-buffering aggregators (0 = all ranks).
    pub cb_nodes: usize,
    /// Collective buffer size per aggregator, per phase.
    pub cb_buffer_size: u64,
    /// Data-sieving read buffer size.
    pub ind_rd_buffer_size: u64,
    /// Data-sieving write buffer size.
    pub ind_wr_buffer_size: u64,
    /// Collective buffering on reads.
    pub cb_read: Toggle,
    /// Collective buffering on writes.
    pub cb_write: Toggle,
    /// Data sieving on independent reads.
    pub ds_read: Toggle,
    /// Data sieving on independent writes.
    pub ds_write: Toggle,
    /// Double-buffered pipelining of the two-phase collective sweep
    /// (window k's file I/O overlapped with window k+1's exchange).
    /// `Automatic` means on; `disable` forces the strictly synchronous
    /// sweep.
    pub cb_pipeline: Toggle,
    /// Vectored list I/O on DAFS backends: ship a sorted `(offset, len)`
    /// list as one wire request instead of data-sieving the covering
    /// extent. `Automatic` means on where the backend supports it (DAFS,
    /// DafsStriped); `disable` keeps the sieving path. Inert on NFS/UFS,
    /// which have no vectored op.
    pub dafs_listio: Toggle,
    /// Number of servers to stripe a new file over (PVFS/ROMIO
    /// convention). 0 = all servers the filesystem has. Ignored by
    /// unstriped drivers.
    pub striping_factor: usize,
    /// Stripe (block) size in bytes for striped filesystems. 0 = the
    /// driver's default. Ignored by unstriped drivers.
    pub striping_unit: u64,
    /// Raw key/value pairs as supplied (inert keys are preserved, like
    /// `striping_unit` on filesystems that ignore it).
    pub raw: BTreeMap<String, String>,
}

/// Default for `dafs_listio`: `Automatic` unless the `MPIO_DAFS_LISTIO`
/// environment variable says otherwise. The env knob is a sweep-wide kill
/// switch — `MPIO_DAFS_LISTIO=disable` re-runs any workload on the
/// pre-list-I/O sieving paths without touching its hint set (used to
/// verify the bench sweep is byte-identical either way). An explicit
/// `dafs_listio` hint still overrides it.
fn listio_env_default() -> Toggle {
    match std::env::var("MPIO_DAFS_LISTIO") {
        Ok(v) => parse_toggle(&v),
        Err(_) => Toggle::Automatic,
    }
}

impl Default for Hints {
    fn default() -> Self {
        Hints {
            cb_nodes: 0,
            cb_buffer_size: 4 << 20,
            ind_rd_buffer_size: 4 << 20,
            ind_wr_buffer_size: 512 << 10,
            cb_read: Toggle::Automatic,
            cb_write: Toggle::Automatic,
            ds_read: Toggle::Automatic,
            ds_write: Toggle::Automatic,
            cb_pipeline: Toggle::Automatic,
            dafs_listio: listio_env_default(),
            striping_factor: 0,
            striping_unit: 0,
            raw: BTreeMap::new(),
        }
    }
}

fn parse_toggle(v: &str) -> Toggle {
    match v {
        "enable" | "true" => Toggle::Enable,
        "disable" | "false" => Toggle::Disable,
        _ => Toggle::Automatic,
    }
}

impl Hints {
    /// Parse `(key, value)` pairs, ROMIO-style. Unknown keys are kept in
    /// `raw` and otherwise ignored.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, &'a str)>) -> Hints {
        let mut h = Hints::default();
        for (k, v) in pairs {
            h.set(k, v);
        }
        h
    }

    /// Set one hint.
    pub fn set(&mut self, key: &str, value: &str) {
        self.raw.insert(key.to_string(), value.to_string());
        match key {
            "cb_nodes" => {
                if let Ok(n) = value.parse() {
                    self.cb_nodes = n;
                }
            }
            "cb_buffer_size" => {
                if let Ok(n) = value.parse::<u64>() {
                    self.cb_buffer_size = n.max(4096);
                }
            }
            "ind_rd_buffer_size" => {
                if let Ok(n) = value.parse::<u64>() {
                    self.ind_rd_buffer_size = n.max(4096);
                }
            }
            "ind_wr_buffer_size" => {
                if let Ok(n) = value.parse::<u64>() {
                    self.ind_wr_buffer_size = n.max(4096);
                }
            }
            "romio_cb_read" => self.cb_read = parse_toggle(value),
            "romio_cb_write" => self.cb_write = parse_toggle(value),
            "romio_ds_read" => self.ds_read = parse_toggle(value),
            "romio_ds_write" => self.ds_write = parse_toggle(value),
            "romio_cb_pipeline" => self.cb_pipeline = parse_toggle(value),
            "dafs_listio" => self.dafs_listio = parse_toggle(value),
            "striping_factor" => {
                if let Ok(n) = value.parse() {
                    self.striping_factor = n;
                }
            }
            "striping_unit" => {
                // Floor at 4 KiB like the buffer-size hints; 0 keeps the
                // driver default.
                if let Ok(n) = value.parse::<u64>() {
                    if n > 0 {
                        self.striping_unit = n.max(4096);
                    }
                }
            }
            _ => {}
        }
    }

    /// Effective number of aggregators for a `size`-rank communicator.
    pub fn aggregators(&self, size: usize) -> usize {
        if self.cb_nodes == 0 {
            size
        } else {
            self.cb_nodes.min(size).max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let h = Hints::default();
        assert_eq!(h.cb_buffer_size, 4 << 20);
        assert_eq!(h.aggregators(8), 8);
        assert_eq!(h.cb_read, Toggle::Automatic);
    }

    #[test]
    fn parse_known_keys() {
        let h = Hints::from_pairs([
            ("cb_nodes", "2"),
            ("cb_buffer_size", "1048576"),
            ("romio_cb_write", "disable"),
            ("romio_ds_read", "enable"),
            ("striping_unit", "65536"), // parsed by striped drivers, kept in raw
        ]);
        assert_eq!(h.cb_nodes, 2);
        assert_eq!(h.aggregators(8), 2);
        assert_eq!(h.cb_buffer_size, 1 << 20);
        assert_eq!(h.cb_write, Toggle::Disable);
        assert_eq!(h.ds_read, Toggle::Enable);
        assert_eq!(h.striping_unit, 65536);
        assert_eq!(h.raw["striping_unit"], "65536");
    }

    #[test]
    fn striping_hints_parse_and_clamp() {
        let h = Hints::default();
        assert_eq!(h.striping_factor, 0);
        assert_eq!(h.striping_unit, 0);
        let h = Hints::from_pairs([("striping_factor", "4"), ("striping_unit", "131072")]);
        assert_eq!(h.striping_factor, 4);
        assert_eq!(h.striping_unit, 128 << 10);
        // Tiny units clamp to the 4 KiB floor; zero and garbage keep the
        // driver default.
        let h = Hints::from_pairs([("striping_unit", "16")]);
        assert_eq!(h.striping_unit, 4096);
        let h = Hints::from_pairs([("striping_unit", "0"), ("striping_factor", "lots")]);
        assert_eq!(h.striping_unit, 0);
        assert_eq!(h.striping_factor, 0);
    }

    #[test]
    fn bad_values_fall_back() {
        let h = Hints::from_pairs([("cb_buffer_size", "banana"), ("romio_cb_read", "maybe")]);
        assert_eq!(h.cb_buffer_size, 4 << 20);
        assert_eq!(h.cb_read, Toggle::Automatic);
    }

    #[test]
    fn aggregator_clamping() {
        let mut h = Hints::default();
        h.set("cb_nodes", "100");
        assert_eq!(h.aggregators(4), 4);
        h.set("cb_nodes", "0");
        assert_eq!(h.aggregators(4), 4);
    }

    #[test]
    fn tiny_buffers_clamped() {
        let mut h = Hints::default();
        h.set("cb_buffer_size", "1");
        assert_eq!(h.cb_buffer_size, 4096);
    }

    #[test]
    fn sieving_buffer_sizes_parse_and_clamp() {
        let h = Hints::from_pairs([
            ("ind_rd_buffer_size", "65536"),
            ("ind_wr_buffer_size", "131072"),
        ]);
        assert_eq!(h.ind_rd_buffer_size, 64 << 10);
        assert_eq!(h.ind_wr_buffer_size, 128 << 10);
        // Below the 4 KiB floor: clamped, not taken literally.
        let h = Hints::from_pairs([("ind_rd_buffer_size", "16"), ("ind_wr_buffer_size", "0")]);
        assert_eq!(h.ind_rd_buffer_size, 4096);
        assert_eq!(h.ind_wr_buffer_size, 4096);
    }

    #[test]
    fn sieving_buffer_garbage_keeps_defaults() {
        let h = Hints::from_pairs([
            ("ind_rd_buffer_size", "lots"),
            ("ind_wr_buffer_size", "-4096"),
        ]);
        assert_eq!(h.ind_rd_buffer_size, 4 << 20);
        assert_eq!(h.ind_wr_buffer_size, 512 << 10);
    }

    #[test]
    fn ds_toggles_parse_all_spellings() {
        let h = Hints::from_pairs([("romio_ds_read", "false"), ("romio_ds_write", "true")]);
        assert_eq!(h.ds_read, Toggle::Disable);
        assert_eq!(h.ds_write, Toggle::Enable);
        let h = Hints::from_pairs([("romio_ds_write", "automatic")]);
        assert_eq!(h.ds_write, Toggle::Automatic);
    }

    #[test]
    fn cb_pipeline_toggle() {
        assert_eq!(Hints::default().cb_pipeline, Toggle::Automatic);
        let h = Hints::from_pairs([("romio_cb_pipeline", "disable")]);
        assert_eq!(h.cb_pipeline, Toggle::Disable);
        let h = Hints::from_pairs([("romio_cb_pipeline", "enable")]);
        assert_eq!(h.cb_pipeline, Toggle::Enable);
    }

    #[test]
    fn dafs_listio_toggle() {
        assert_eq!(Hints::default().dafs_listio, Toggle::Automatic);
        let h = Hints::from_pairs([("dafs_listio", "disable")]);
        assert_eq!(h.dafs_listio, Toggle::Disable);
        let h = Hints::from_pairs([("dafs_listio", "enable")]);
        assert_eq!(h.dafs_listio, Toggle::Enable);
        let h = Hints::from_pairs([("dafs_listio", "sometimes")]);
        assert_eq!(h.dafs_listio, Toggle::Automatic);
    }

    #[test]
    fn raw_preserves_known_and_unknown_keys_verbatim() {
        let h = Hints::from_pairs([
            ("ind_wr_buffer_size", "16"), // clamped in the parsed field...
            ("romio_ds_read", "maybe"),   // ...fell back to Automatic...
            ("mystery_knob", "7"),        // ...inert
        ]);
        // ...but raw always records what the application actually said.
        assert_eq!(h.raw["ind_wr_buffer_size"], "16");
        assert_eq!(h.raw["romio_ds_read"], "maybe");
        assert_eq!(h.raw["mystery_knob"], "7");
    }
}
