//! MPI_Info hints, with the ROMIO-compatible key set.
//!
//! Every known hint is described by one entry in the [`HINT_SPECS`] table:
//! its key, its value kind ([`HintKind`]), and typed accessors. Parsing,
//! clamping, environment-variable defaults, and round-tripping all flow
//! through that single table, so adding a hint is one spec entry plus a
//! field — not another ad-hoc `match` arm with its own string handling.

use std::collections::BTreeMap;

/// Tri-state used by the `romio_cb_*` / `romio_ds_*` / `dafs_*` hints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TriState {
    /// Use the optimization whenever it applies.
    Enable,
    /// Never use it.
    Disable,
    /// Let the implementation decide (the default).
    #[default]
    Automatic,
}

impl TriState {
    /// Parse a hint value, ROMIO-style: `enable`/`true` and
    /// `disable`/`false` are recognized; anything else (including garbage)
    /// means `Automatic`.
    pub fn parse(v: &str) -> TriState {
        match v {
            "enable" | "true" => TriState::Enable,
            "disable" | "false" => TriState::Disable,
            _ => TriState::Automatic,
        }
    }

    /// Canonical hint spelling; `parse(as_str(t)) == t` for every value.
    pub fn as_str(self) -> &'static str {
        match self {
            TriState::Enable => "enable",
            TriState::Disable => "disable",
            TriState::Automatic => "automatic",
        }
    }
}

/// The value kind of one hint key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HintKind {
    /// Tri-state (`enable` / `disable` / anything-else-is-automatic).
    Tri,
    /// Byte size with a 4 KiB floor. With `zero_keeps_default`, a literal
    /// `0` leaves the field untouched (the driver default), like
    /// `striping_unit`.
    Size {
        /// Values below this clamp up to it.
        floor: u64,
        /// `0` keeps the prior/default value instead of being clamped.
        zero_keeps_default: bool,
    },
    /// Plain count (`cb_nodes`, `striping_factor`).
    Count,
}

impl HintKind {
    /// Parse one value of this kind. `None` means "keep the current
    /// field value" (unparsable numbers, or `0` where zero keeps the
    /// default); tri-states never return `None` — garbage parses to
    /// `Automatic`, exactly like the historical per-hint parsers.
    pub fn parse(self, v: &str) -> Option<HintValue> {
        match self {
            HintKind::Tri => Some(HintValue::Tri(TriState::parse(v))),
            HintKind::Count => v.parse().ok().map(HintValue::Count),
            HintKind::Size {
                floor,
                zero_keeps_default,
            } => match v.parse::<u64>() {
                Ok(0) if zero_keeps_default => None,
                Ok(n) => Some(HintValue::Size(n.max(floor))),
                Err(_) => None,
            },
        }
    }
}

/// A typed hint value: what [`Hints::get`] returns and what the spec
/// table's setters consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HintValue {
    /// Tri-state hints.
    Tri(TriState),
    /// Byte-size hints.
    Size(u64),
    /// Count hints.
    Count(usize),
}

impl HintValue {
    /// Canonical hint-string spelling: parsing it back through the same
    /// spec yields an equal value (the round-trip property).
    pub fn to_hint_string(self) -> String {
        match self {
            HintValue::Tri(t) => t.as_str().to_string(),
            HintValue::Size(n) => n.to_string(),
            HintValue::Count(n) => n.to_string(),
        }
    }
}

/// One known hint: key, value kind, and typed field accessors.
pub struct HintSpec {
    /// The `MPI_Info` key.
    pub key: &'static str,
    /// How its values parse.
    pub kind: HintKind,
    set: fn(&mut Hints, HintValue),
    get: fn(&Hints) -> HintValue,
}

/// 4 KiB floor shared by every buffer-size hint.
const SIZE_FLOOR: HintKind = HintKind::Size {
    floor: 4096,
    zero_keeps_default: false,
};

/// The one table every hint flows through.
pub const HINT_SPECS: &[HintSpec] = &[
    HintSpec {
        key: "cb_nodes",
        kind: HintKind::Count,
        set: |h, v| {
            if let HintValue::Count(n) = v {
                h.cb_nodes = n;
            }
        },
        get: |h| HintValue::Count(h.cb_nodes),
    },
    HintSpec {
        key: "cb_buffer_size",
        kind: SIZE_FLOOR,
        set: |h, v| {
            if let HintValue::Size(n) = v {
                h.cb_buffer_size = n;
            }
        },
        get: |h| HintValue::Size(h.cb_buffer_size),
    },
    HintSpec {
        key: "ind_rd_buffer_size",
        kind: SIZE_FLOOR,
        set: |h, v| {
            if let HintValue::Size(n) = v {
                h.ind_rd_buffer_size = n;
            }
        },
        get: |h| HintValue::Size(h.ind_rd_buffer_size),
    },
    HintSpec {
        key: "ind_wr_buffer_size",
        kind: SIZE_FLOOR,
        set: |h, v| {
            if let HintValue::Size(n) = v {
                h.ind_wr_buffer_size = n;
            }
        },
        get: |h| HintValue::Size(h.ind_wr_buffer_size),
    },
    HintSpec {
        key: "romio_cb_read",
        kind: HintKind::Tri,
        set: |h, v| {
            if let HintValue::Tri(t) = v {
                h.cb_read = t;
            }
        },
        get: |h| HintValue::Tri(h.cb_read),
    },
    HintSpec {
        key: "romio_cb_write",
        kind: HintKind::Tri,
        set: |h, v| {
            if let HintValue::Tri(t) = v {
                h.cb_write = t;
            }
        },
        get: |h| HintValue::Tri(h.cb_write),
    },
    HintSpec {
        key: "romio_ds_read",
        kind: HintKind::Tri,
        set: |h, v| {
            if let HintValue::Tri(t) = v {
                h.ds_read = t;
            }
        },
        get: |h| HintValue::Tri(h.ds_read),
    },
    HintSpec {
        key: "romio_ds_write",
        kind: HintKind::Tri,
        set: |h, v| {
            if let HintValue::Tri(t) = v {
                h.ds_write = t;
            }
        },
        get: |h| HintValue::Tri(h.ds_write),
    },
    HintSpec {
        key: "romio_cb_pipeline",
        kind: HintKind::Tri,
        set: |h, v| {
            if let HintValue::Tri(t) = v {
                h.cb_pipeline = t;
            }
        },
        get: |h| HintValue::Tri(h.cb_pipeline),
    },
    HintSpec {
        key: "romio_cb_cache",
        kind: HintKind::Tri,
        set: |h, v| {
            if let HintValue::Tri(t) = v {
                h.cb_cache = t;
            }
        },
        get: |h| HintValue::Tri(h.cb_cache),
    },
    HintSpec {
        key: "dafs_listio",
        kind: HintKind::Tri,
        set: |h, v| {
            if let HintValue::Tri(t) = v {
                h.dafs_listio = t;
            }
        },
        get: |h| HintValue::Tri(h.dafs_listio),
    },
    HintSpec {
        key: "dafs_cache",
        kind: HintKind::Tri,
        set: |h, v| {
            if let HintValue::Tri(t) = v {
                h.dafs_cache = t;
            }
        },
        get: |h| HintValue::Tri(h.dafs_cache),
    },
    HintSpec {
        key: "dafs_qos",
        kind: HintKind::Tri,
        set: |h, v| {
            if let HintValue::Tri(t) = v {
                h.dafs_qos = t;
            }
        },
        get: |h| HintValue::Tri(h.dafs_qos),
    },
    HintSpec {
        key: "dafs_tenant_weight",
        kind: HintKind::Count,
        set: |h, v| {
            if let HintValue::Count(n) = v {
                h.dafs_tenant_weight = n.max(1) as u32;
            }
        },
        get: |h| HintValue::Count(h.dafs_tenant_weight as usize),
    },
    HintSpec {
        key: "striping_factor",
        kind: HintKind::Count,
        set: |h, v| {
            if let HintValue::Count(n) = v {
                h.striping_factor = n;
            }
        },
        get: |h| HintValue::Count(h.striping_factor),
    },
    HintSpec {
        key: "striping_unit",
        kind: HintKind::Size {
            floor: 4096,
            zero_keeps_default: true,
        },
        set: |h, v| {
            if let HintValue::Size(n) = v {
                h.striping_unit = n;
            }
        },
        get: |h| HintValue::Size(h.striping_unit),
    },
];

/// Look up the spec for `key`.
pub fn hint_spec(key: &str) -> Option<&'static HintSpec> {
    HINT_SPECS.iter().find(|s| s.key == key)
}

/// Tri-state hints whose sweep-wide default can come from an
/// `MPIO_DAFS_*` environment variable: `(hint key, env var)`.
pub const TRI_ENV_OVERRIDES: &[(&str, &str)] = &[
    ("dafs_listio", "MPIO_DAFS_LISTIO"),
    ("dafs_cache", "MPIO_DAFS_CACHE"),
    ("dafs_qos", "MPIO_DAFS_QOS"),
    ("romio_cb_cache", "MPIO_ROMIO_CB_CACHE"),
];

/// The value an `MPIO_DAFS_*` override variable contributes: its parsed
/// tri-state when set, `Automatic` when absent. Pure; the env read lives
/// in [`tri_env_default`].
pub fn tri_env_value(v: Option<&str>) -> TriState {
    match v {
        Some(v) => TriState::parse(v),
        None => TriState::Automatic,
    }
}

/// Uniform environment override for tri-state hints: the sweep-wide
/// default for a hint comes from its `MPIO_DAFS_*` variable, and an
/// explicit hint still wins. Used by every entry in
/// [`TRI_ENV_OVERRIDES`].
pub fn tri_env_default(var: &str) -> TriState {
    tri_env_value(std::env::var(var).ok().as_deref())
}

/// Parsed hints controlling the I/O strategies.
#[derive(Debug, Clone)]
pub struct Hints {
    /// Number of collective-buffering aggregators (0 = all ranks).
    pub cb_nodes: usize,
    /// Collective buffer size per aggregator, per phase.
    pub cb_buffer_size: u64,
    /// Data-sieving read buffer size.
    pub ind_rd_buffer_size: u64,
    /// Data-sieving write buffer size.
    pub ind_wr_buffer_size: u64,
    /// Collective buffering on reads.
    pub cb_read: TriState,
    /// Collective buffering on writes.
    pub cb_write: TriState,
    /// Data sieving on independent reads.
    pub ds_read: TriState,
    /// Data sieving on independent writes.
    pub ds_write: TriState,
    /// Double-buffered pipelining of the two-phase collective sweep
    /// (window k's file I/O overlapped with window k+1's exchange).
    /// `Automatic` means on; `disable` forces the strictly synchronous
    /// sweep.
    pub cb_pipeline: TriState,
    /// Cache-aware collective buffering: with this **and** `dafs_cache`
    /// enabled, two-phase aggregators write their aggregated windows
    /// through the lease-coherent write-back cache (the drain rides the
    /// coalesced `WriteList` flush at sync/close) and serve exchange
    /// reads from leased pages. `Automatic` means **off** — like
    /// `dafs_cache`, it changes when bytes reach the server, so it is
    /// strictly opt-in via `enable`; `disable` is byte-identical to the
    /// plain pipelined sweep. Inert on non-DAFS backends.
    pub cb_cache: TriState,
    /// Vectored list I/O on DAFS backends: ship a sorted `(offset, len)`
    /// list as one wire request instead of data-sieving the covering
    /// extent. `Automatic` means on where the backend supports it (DAFS,
    /// DafsStriped); `disable` keeps the sieving path. Inert on NFS/UFS,
    /// which have no vectored op.
    pub dafs_listio: TriState,
    /// Lease-coherent client caching on DAFS backends: serve re-reads and
    /// getattrs from a client page/attribute cache under a server-issued
    /// lease, recalled when a conflicting writer appears. `Automatic`
    /// means **off** — unlike `dafs_listio`, caching changes the
    /// write-sharing cost model (recalls), so it is strictly opt-in via
    /// `enable`. Inert on non-DAFS backends.
    pub dafs_cache: TriState,
    /// QoS tenant declaration on DAFS backends: the open declares the
    /// MPI job as one tenant to the server's request scheduler, which
    /// apportions service by `dafs_tenant_weight` when fairness is on.
    /// `Automatic` means **off** (no declaration, wire bytes unchanged) —
    /// like `dafs_cache`, strictly opt-in via `enable`. Inert on non-DAFS
    /// backends and under a FIFO server.
    pub dafs_qos: TriState,
    /// Scheduling weight this job declares with `dafs_qos`; service under
    /// a weighted-fair server is proportional to weight. Clamped to ≥ 1.
    pub dafs_tenant_weight: u32,
    /// Number of servers to stripe a new file over (PVFS/ROMIO
    /// convention). 0 = all servers the filesystem has. Ignored by
    /// unstriped drivers.
    pub striping_factor: usize,
    /// Stripe (block) size in bytes for striped filesystems. 0 = the
    /// driver's default. Ignored by unstriped drivers.
    pub striping_unit: u64,
    /// Raw key/value pairs as supplied (inert keys are preserved, like
    /// `striping_unit` on filesystems that ignore it).
    pub raw: BTreeMap<String, String>,
}

impl Default for Hints {
    fn default() -> Self {
        Hints {
            cb_nodes: 0,
            cb_buffer_size: 4 << 20,
            ind_rd_buffer_size: 4 << 20,
            ind_wr_buffer_size: 512 << 10,
            cb_read: TriState::Automatic,
            cb_write: TriState::Automatic,
            ds_read: TriState::Automatic,
            ds_write: TriState::Automatic,
            cb_pipeline: TriState::Automatic,
            cb_cache: tri_env_default("MPIO_ROMIO_CB_CACHE"),
            dafs_listio: tri_env_default("MPIO_DAFS_LISTIO"),
            dafs_cache: tri_env_default("MPIO_DAFS_CACHE"),
            dafs_qos: tri_env_default("MPIO_DAFS_QOS"),
            dafs_tenant_weight: std::env::var("MPIO_DAFS_TENANT_WEIGHT")
                .ok()
                .and_then(|v| v.parse().ok())
                .map(|w: u32| w.max(1))
                .unwrap_or(1),
            striping_factor: 0,
            striping_unit: 0,
            raw: BTreeMap::new(),
        }
    }
}

impl Hints {
    /// Parse `(key, value)` pairs, ROMIO-style. Unknown keys are kept in
    /// `raw` and otherwise ignored.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, &'a str)>) -> Hints {
        let mut h = Hints::default();
        for (k, v) in pairs {
            h.set(k, v);
        }
        h
    }

    /// Set one hint. Known keys parse through their [`HintSpec`]; unknown
    /// keys only land in `raw` (counted into `mpiio.hints.unknown` at
    /// open, where a metrics context exists).
    pub fn set(&mut self, key: &str, value: &str) {
        self.raw.insert(key.to_string(), value.to_string());
        if let Some(spec) = hint_spec(key) {
            if let Some(v) = spec.kind.parse(value) {
                (spec.set)(self, v);
            }
        }
    }

    /// The typed current value of a known hint key.
    pub fn get(&self, key: &str) -> Option<HintValue> {
        hint_spec(key).map(|spec| (spec.get)(self))
    }

    /// Raw keys that match no [`HintSpec`] — inert hints the application
    /// supplied. Surfaced as `mpiio.hints.unknown` warnings at open.
    pub fn unknown_keys(&self) -> impl Iterator<Item = &str> {
        self.raw
            .keys()
            .map(String::as_str)
            .filter(|k| hint_spec(k).is_none())
    }

    /// Effective number of aggregators for a `size`-rank communicator.
    pub fn aggregators(&self, size: usize) -> usize {
        if self.cb_nodes == 0 {
            size
        } else {
            self.cb_nodes.min(size).max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let h = Hints::default();
        assert_eq!(h.cb_buffer_size, 4 << 20);
        assert_eq!(h.aggregators(8), 8);
        assert_eq!(h.cb_read, TriState::Automatic);
    }

    #[test]
    fn parse_known_keys() {
        let h = Hints::from_pairs([
            ("cb_nodes", "2"),
            ("cb_buffer_size", "1048576"),
            ("romio_cb_write", "disable"),
            ("romio_ds_read", "enable"),
            ("striping_unit", "65536"), // parsed by striped drivers, kept in raw
        ]);
        assert_eq!(h.cb_nodes, 2);
        assert_eq!(h.aggregators(8), 2);
        assert_eq!(h.cb_buffer_size, 1 << 20);
        assert_eq!(h.cb_write, TriState::Disable);
        assert_eq!(h.ds_read, TriState::Enable);
        assert_eq!(h.striping_unit, 65536);
        assert_eq!(h.raw["striping_unit"], "65536");
    }

    #[test]
    fn striping_hints_parse_and_clamp() {
        let h = Hints::default();
        assert_eq!(h.striping_factor, 0);
        assert_eq!(h.striping_unit, 0);
        let h = Hints::from_pairs([("striping_factor", "4"), ("striping_unit", "131072")]);
        assert_eq!(h.striping_factor, 4);
        assert_eq!(h.striping_unit, 128 << 10);
        // Tiny units clamp to the 4 KiB floor; zero and garbage keep the
        // driver default.
        let h = Hints::from_pairs([("striping_unit", "16")]);
        assert_eq!(h.striping_unit, 4096);
        let h = Hints::from_pairs([("striping_unit", "0"), ("striping_factor", "lots")]);
        assert_eq!(h.striping_unit, 0);
        assert_eq!(h.striping_factor, 0);
    }

    #[test]
    fn bad_values_fall_back() {
        let h = Hints::from_pairs([("cb_buffer_size", "banana"), ("romio_cb_read", "maybe")]);
        assert_eq!(h.cb_buffer_size, 4 << 20);
        assert_eq!(h.cb_read, TriState::Automatic);
    }

    #[test]
    fn aggregator_clamping() {
        let mut h = Hints::default();
        h.set("cb_nodes", "100");
        assert_eq!(h.aggregators(4), 4);
        h.set("cb_nodes", "0");
        assert_eq!(h.aggregators(4), 4);
    }

    #[test]
    fn tiny_buffers_clamped() {
        let mut h = Hints::default();
        h.set("cb_buffer_size", "1");
        assert_eq!(h.cb_buffer_size, 4096);
    }

    #[test]
    fn sieving_buffer_sizes_parse_and_clamp() {
        let h = Hints::from_pairs([
            ("ind_rd_buffer_size", "65536"),
            ("ind_wr_buffer_size", "131072"),
        ]);
        assert_eq!(h.ind_rd_buffer_size, 64 << 10);
        assert_eq!(h.ind_wr_buffer_size, 128 << 10);
        // Below the 4 KiB floor: clamped, not taken literally.
        let h = Hints::from_pairs([("ind_rd_buffer_size", "16"), ("ind_wr_buffer_size", "0")]);
        assert_eq!(h.ind_rd_buffer_size, 4096);
        assert_eq!(h.ind_wr_buffer_size, 4096);
    }

    #[test]
    fn sieving_buffer_garbage_keeps_defaults() {
        let h = Hints::from_pairs([
            ("ind_rd_buffer_size", "lots"),
            ("ind_wr_buffer_size", "-4096"),
        ]);
        assert_eq!(h.ind_rd_buffer_size, 4 << 20);
        assert_eq!(h.ind_wr_buffer_size, 512 << 10);
    }

    #[test]
    fn ds_toggles_parse_all_spellings() {
        let h = Hints::from_pairs([("romio_ds_read", "false"), ("romio_ds_write", "true")]);
        assert_eq!(h.ds_read, TriState::Disable);
        assert_eq!(h.ds_write, TriState::Enable);
        let h = Hints::from_pairs([("romio_ds_write", "automatic")]);
        assert_eq!(h.ds_write, TriState::Automatic);
    }

    #[test]
    fn cb_pipeline_toggle() {
        assert_eq!(Hints::default().cb_pipeline, TriState::Automatic);
        let h = Hints::from_pairs([("romio_cb_pipeline", "disable")]);
        assert_eq!(h.cb_pipeline, TriState::Disable);
        let h = Hints::from_pairs([("romio_cb_pipeline", "enable")]);
        assert_eq!(h.cb_pipeline, TriState::Enable);
    }

    #[test]
    fn cb_cache_toggle() {
        // Off by default, strictly opt-in — like dafs_cache.
        assert_eq!(Hints::default().cb_cache, TriState::Automatic);
        let h = Hints::from_pairs([("romio_cb_cache", "enable")]);
        assert_eq!(h.cb_cache, TriState::Enable);
        let h = Hints::from_pairs([("romio_cb_cache", "disable")]);
        assert_eq!(h.cb_cache, TriState::Disable);
        let h = Hints::from_pairs([("romio_cb_cache", "sometimes")]);
        assert_eq!(h.cb_cache, TriState::Automatic);
    }

    #[test]
    fn dafs_listio_toggle() {
        assert_eq!(Hints::default().dafs_listio, TriState::Automatic);
        let h = Hints::from_pairs([("dafs_listio", "disable")]);
        assert_eq!(h.dafs_listio, TriState::Disable);
        let h = Hints::from_pairs([("dafs_listio", "enable")]);
        assert_eq!(h.dafs_listio, TriState::Enable);
        let h = Hints::from_pairs([("dafs_listio", "sometimes")]);
        assert_eq!(h.dafs_listio, TriState::Automatic);
    }

    #[test]
    fn dafs_cache_toggle() {
        assert_eq!(Hints::default().dafs_cache, TriState::Automatic);
        let h = Hints::from_pairs([("dafs_cache", "enable")]);
        assert_eq!(h.dafs_cache, TriState::Enable);
        let h = Hints::from_pairs([("dafs_cache", "disable")]);
        assert_eq!(h.dafs_cache, TriState::Disable);
        let h = Hints::from_pairs([("dafs_cache", "sometimes")]);
        assert_eq!(h.dafs_cache, TriState::Automatic);
    }

    #[test]
    fn dafs_qos_toggle_and_weight() {
        // Off by default, strictly opt-in — like dafs_cache.
        assert_eq!(Hints::default().dafs_qos, TriState::Automatic);
        assert_eq!(Hints::default().dafs_tenant_weight, 1);
        let h = Hints::from_pairs([("dafs_qos", "enable"), ("dafs_tenant_weight", "8")]);
        assert_eq!(h.dafs_qos, TriState::Enable);
        assert_eq!(h.dafs_tenant_weight, 8);
        // Weight 0 clamps to 1 (a zero-weight tenant would starve itself).
        let h = Hints::from_pairs([("dafs_tenant_weight", "0")]);
        assert_eq!(h.dafs_tenant_weight, 1);
        let h = Hints::from_pairs([("dafs_qos", "sometimes")]);
        assert_eq!(h.dafs_qos, TriState::Automatic);
    }

    #[test]
    fn raw_preserves_known_and_unknown_keys_verbatim() {
        let h = Hints::from_pairs([
            ("ind_wr_buffer_size", "16"), // clamped in the parsed field...
            ("romio_ds_read", "maybe"),   // ...fell back to Automatic...
            ("mystery_knob", "7"),        // ...inert
        ]);
        // ...but raw always records what the application actually said.
        assert_eq!(h.raw["ind_wr_buffer_size"], "16");
        assert_eq!(h.raw["romio_ds_read"], "maybe");
        assert_eq!(h.raw["mystery_knob"], "7");
    }

    #[test]
    fn unknown_keys_are_detected() {
        let h = Hints::from_pairs([
            ("cb_nodes", "2"),
            ("mystery_knob", "7"),
            ("romio_no_such", "enable"),
        ]);
        let unknown: Vec<&str> = h.unknown_keys().collect();
        assert_eq!(unknown, vec!["mystery_knob", "romio_no_such"]);
    }

    /// Round-trip property: for every tri-state hint and every spelling,
    /// set → get → render → set again reproduces the same typed value
    /// through the one spec-table path.
    #[test]
    fn tri_hints_round_trip() {
        let tri_keys: Vec<&str> = HINT_SPECS
            .iter()
            .filter(|s| s.kind == HintKind::Tri)
            .map(|s| s.key)
            .collect();
        assert!(tri_keys.len() >= 7, "all tri-state hints must be specs");
        let spellings = [
            ("enable", TriState::Enable),
            ("true", TriState::Enable),
            ("disable", TriState::Disable),
            ("false", TriState::Disable),
            ("automatic", TriState::Automatic),
            ("garbage", TriState::Automatic),
        ];
        for key in &tri_keys {
            for (spelling, want) in &spellings {
                let mut h = Hints::default();
                h.set(key, spelling);
                let got = h.get(key).unwrap();
                assert_eq!(got, HintValue::Tri(*want), "{key}={spelling}");
                // Render and re-parse: the canonical spelling must map to
                // the same typed value.
                let rendered = got.to_hint_string();
                let mut h2 = Hints::default();
                h2.set(key, &rendered);
                assert_eq!(h2.get(key).unwrap(), got, "{key} round-trip");
            }
        }
    }

    /// Numeric hints round-trip through the same single path.
    #[test]
    fn numeric_hints_round_trip() {
        for spec in HINT_SPECS.iter().filter(|s| s.kind != HintKind::Tri) {
            let mut h = Hints::default();
            h.set(spec.key, "131072");
            let got = h.get(spec.key).unwrap();
            let rendered = got.to_hint_string();
            let mut h2 = Hints::default();
            h2.set(spec.key, &rendered);
            assert_eq!(h2.get(spec.key).unwrap(), got, "{} round-trip", spec.key);
        }
    }

    /// The uniform env-override helper: every `MPIO_DAFS_*` variable in
    /// [`TRI_ENV_OVERRIDES`] contributes the same tri-state mapping, and
    /// every tri-state spelling flows through [`TriState::parse`].
    #[test]
    fn env_override_mapping() {
        assert_eq!(tri_env_value(None), TriState::Automatic);
        assert_eq!(tri_env_value(Some("enable")), TriState::Enable);
        assert_eq!(tri_env_value(Some("true")), TriState::Enable);
        assert_eq!(tri_env_value(Some("disable")), TriState::Disable);
        assert_eq!(tri_env_value(Some("false")), TriState::Disable);
        assert_eq!(tri_env_value(Some("whatever")), TriState::Automatic);
        // Every override entry names a known tri-state hint and a
        // variable in the project env namespace (`MPIO_DAFS_*` for the
        // DAFS-backend hints, `MPIO_ROMIO_*` for the ROMIO-level ones).
        for (key, var) in TRI_ENV_OVERRIDES {
            let spec = hint_spec(key).expect("override key must be a spec");
            assert_eq!(spec.kind, HintKind::Tri, "{key}");
            assert!(
                var.starts_with("MPIO_DAFS_") || var.starts_with("MPIO_ROMIO_"),
                "{var}"
            );
        }
    }
}
