//! MPI_Info hints, with the ROMIO-compatible key set.

use std::collections::BTreeMap;

/// Tri-state used by the `romio_cb_*` / `romio_ds_*` hints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Toggle {
    /// Use the optimization whenever it applies.
    Enable,
    /// Never use it.
    Disable,
    /// Let the implementation decide (the default).
    #[default]
    Automatic,
}

/// Parsed hints controlling the I/O strategies.
#[derive(Debug, Clone)]
pub struct Hints {
    /// Number of collective-buffering aggregators (0 = all ranks).
    pub cb_nodes: usize,
    /// Collective buffer size per aggregator, per phase.
    pub cb_buffer_size: u64,
    /// Data-sieving read buffer size.
    pub ind_rd_buffer_size: u64,
    /// Data-sieving write buffer size.
    pub ind_wr_buffer_size: u64,
    /// Collective buffering on reads.
    pub cb_read: Toggle,
    /// Collective buffering on writes.
    pub cb_write: Toggle,
    /// Data sieving on independent reads.
    pub ds_read: Toggle,
    /// Data sieving on independent writes.
    pub ds_write: Toggle,
    /// Raw key/value pairs as supplied (inert keys are preserved, like
    /// `striping_unit` on filesystems that ignore it).
    pub raw: BTreeMap<String, String>,
}

impl Default for Hints {
    fn default() -> Self {
        Hints {
            cb_nodes: 0,
            cb_buffer_size: 4 << 20,
            ind_rd_buffer_size: 4 << 20,
            ind_wr_buffer_size: 512 << 10,
            cb_read: Toggle::Automatic,
            cb_write: Toggle::Automatic,
            ds_read: Toggle::Automatic,
            ds_write: Toggle::Automatic,
            raw: BTreeMap::new(),
        }
    }
}

fn parse_toggle(v: &str) -> Toggle {
    match v {
        "enable" | "true" => Toggle::Enable,
        "disable" | "false" => Toggle::Disable,
        _ => Toggle::Automatic,
    }
}

impl Hints {
    /// Parse `(key, value)` pairs, ROMIO-style. Unknown keys are kept in
    /// `raw` and otherwise ignored.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, &'a str)>) -> Hints {
        let mut h = Hints::default();
        for (k, v) in pairs {
            h.set(k, v);
        }
        h
    }

    /// Set one hint.
    pub fn set(&mut self, key: &str, value: &str) {
        self.raw.insert(key.to_string(), value.to_string());
        match key {
            "cb_nodes" => {
                if let Ok(n) = value.parse() {
                    self.cb_nodes = n;
                }
            }
            "cb_buffer_size" => {
                if let Ok(n) = value.parse::<u64>() {
                    self.cb_buffer_size = n.max(4096);
                }
            }
            "ind_rd_buffer_size" => {
                if let Ok(n) = value.parse::<u64>() {
                    self.ind_rd_buffer_size = n.max(4096);
                }
            }
            "ind_wr_buffer_size" => {
                if let Ok(n) = value.parse::<u64>() {
                    self.ind_wr_buffer_size = n.max(4096);
                }
            }
            "romio_cb_read" => self.cb_read = parse_toggle(value),
            "romio_cb_write" => self.cb_write = parse_toggle(value),
            "romio_ds_read" => self.ds_read = parse_toggle(value),
            "romio_ds_write" => self.ds_write = parse_toggle(value),
            _ => {}
        }
    }

    /// Effective number of aggregators for a `size`-rank communicator.
    pub fn aggregators(&self, size: usize) -> usize {
        if self.cb_nodes == 0 {
            size
        } else {
            self.cb_nodes.min(size).max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let h = Hints::default();
        assert_eq!(h.cb_buffer_size, 4 << 20);
        assert_eq!(h.aggregators(8), 8);
        assert_eq!(h.cb_read, Toggle::Automatic);
    }

    #[test]
    fn parse_known_keys() {
        let h = Hints::from_pairs([
            ("cb_nodes", "2"),
            ("cb_buffer_size", "1048576"),
            ("romio_cb_write", "disable"),
            ("romio_ds_read", "enable"),
            ("striping_unit", "65536"), // inert, kept in raw
        ]);
        assert_eq!(h.cb_nodes, 2);
        assert_eq!(h.aggregators(8), 2);
        assert_eq!(h.cb_buffer_size, 1 << 20);
        assert_eq!(h.cb_write, Toggle::Disable);
        assert_eq!(h.ds_read, Toggle::Enable);
        assert_eq!(h.raw["striping_unit"], "65536");
    }

    #[test]
    fn bad_values_fall_back() {
        let h = Hints::from_pairs([("cb_buffer_size", "banana"), ("romio_cb_read", "maybe")]);
        assert_eq!(h.cb_buffer_size, 4 << 20);
        assert_eq!(h.cb_read, Toggle::Automatic);
    }

    #[test]
    fn aggregator_clamping() {
        let mut h = Hints::default();
        h.set("cb_nodes", "100");
        assert_eq!(h.aggregators(4), 4);
        h.set("cb_nodes", "0");
        assert_eq!(h.aggregators(4), 4);
    }

    #[test]
    fn tiny_buffers_clamped() {
        let mut h = Hints::default();
        h.set("cb_buffer_size", "1");
        assert_eq!(h.cb_buffer_size, 4096);
    }
}
