//! Memory registration and protection: the VIA translation-and-protection
//! table (TPT).
//!
//! Before a buffer can appear in a descriptor, the application must register
//! it (`VipRegisterMem`): the OS pins the pages and the NIC records the
//! region with its *protection tag*. Every data access the NIC performs —
//! local gather/scatter or remote RDMA — is checked against the table; a
//! mismatch completes the descriptor with a protection error rather than
//! touching memory, exactly as on hardware.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use simnet::VirtAddr;

/// A protection tag (`VIP_PTAG`): the unit of access control. VIs and memory
/// regions carry a tag; they interoperate only when tags match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProtectionTag(pub u64);

/// Handle naming a registered memory region (`VIP_MEM_HANDLE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemHandle(pub u64);

/// Attributes of a registered region.
#[derive(Debug, Clone, Copy)]
pub struct MemAttributes {
    /// Protection tag the region is bound to.
    pub ptag: ProtectionTag,
    /// Whether remote VIs may RDMA-write into this region.
    pub enable_rdma_write: bool,
    /// Whether remote VIs may RDMA-read from this region.
    pub enable_rdma_read: bool,
}

impl MemAttributes {
    /// Local-only region: no remote access rights.
    pub fn local(ptag: ProtectionTag) -> MemAttributes {
        MemAttributes {
            ptag,
            enable_rdma_write: false,
            enable_rdma_read: false,
        }
    }

    /// Region a remote peer may RDMA-write into (DAFS direct-read targets).
    pub fn rdma_write_target(ptag: ProtectionTag) -> MemAttributes {
        MemAttributes {
            ptag,
            enable_rdma_write: true,
            enable_rdma_read: false,
        }
    }

    /// Region a remote peer may RDMA-read from (DAFS direct-write sources,
    /// only meaningful when the NIC supports RDMA Read).
    pub fn rdma_read_source(ptag: ProtectionTag) -> MemAttributes {
        MemAttributes {
            ptag,
            enable_rdma_write: false,
            enable_rdma_read: true,
        }
    }
}

#[derive(Debug, Clone)]
struct Region {
    addr: VirtAddr,
    len: u64,
    attrs: MemAttributes,
}

/// Why a memory check failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Handle does not name a live registration.
    BadHandle,
    /// Access range falls outside the registered region.
    OutOfBounds,
    /// Protection tag does not match the region's.
    TagMismatch,
    /// Region does not permit the requested remote operation.
    RemoteAccessDenied,
}

/// The kind of access being validated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// NIC gather/scatter on behalf of the local VI.
    Local,
    /// Incoming RDMA Write.
    RemoteWrite,
    /// Incoming RDMA Read.
    RemoteRead,
}

/// The NIC's translation-and-protection table. Cloned handles share state
/// (the table lives on the NIC).
#[derive(Clone, Default)]
pub struct RegistrationTable {
    inner: Arc<Mutex<BTreeMap<u64, Region>>>,
    next: Arc<AtomicU64>,
    registered_bytes: Arc<AtomicU64>,
}

impl RegistrationTable {
    /// Create an empty table.
    pub fn new() -> RegistrationTable {
        RegistrationTable::default()
    }

    /// Register `[addr, addr+len)`; returns the new handle.
    pub fn register(&self, addr: VirtAddr, len: u64, attrs: MemAttributes) -> MemHandle {
        assert!(len > 0, "cannot register an empty region");
        let id = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.lock().insert(id, Region { addr, len, attrs });
        self.registered_bytes.fetch_add(len, Ordering::Relaxed);
        MemHandle(id)
    }

    /// Deregister a handle. Returns the region length, or `Err(BadHandle)`.
    pub fn deregister(&self, h: MemHandle) -> Result<u64, MemError> {
        match self.inner.lock().remove(&h.0) {
            Some(r) => {
                self.registered_bytes.fetch_sub(r.len, Ordering::Relaxed);
                Ok(r.len)
            }
            None => Err(MemError::BadHandle),
        }
    }

    /// Validate an access of `len` bytes at `addr` under handle `h` and tag
    /// `ptag`, for the given kind of access.
    pub fn check(
        &self,
        h: MemHandle,
        ptag: ProtectionTag,
        addr: VirtAddr,
        len: u64,
        kind: AccessKind,
    ) -> Result<(), MemError> {
        let tbl = self.inner.lock();
        let r = tbl.get(&h.0).ok_or(MemError::BadHandle)?;
        if r.attrs.ptag != ptag {
            return Err(MemError::TagMismatch);
        }
        if addr < r.addr || addr.as_u64() + len > r.addr.as_u64() + r.len {
            return Err(MemError::OutOfBounds);
        }
        match kind {
            AccessKind::Local => Ok(()),
            AccessKind::RemoteWrite if r.attrs.enable_rdma_write => Ok(()),
            AccessKind::RemoteRead if r.attrs.enable_rdma_read => Ok(()),
            _ => Err(MemError::RemoteAccessDenied),
        }
    }

    /// Total bytes currently registered (for the registration-cost reports).
    pub fn registered_bytes(&self) -> u64 {
        self.registered_bytes.load(Ordering::Relaxed)
    }

    /// Number of live registrations.
    pub fn live_regions(&self) -> usize {
        self.inner.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TAG: ProtectionTag = ProtectionTag(7);
    const OTHER: ProtectionTag = ProtectionTag(8);

    #[test]
    fn register_check_deregister() {
        let t = RegistrationTable::new();
        let h = t.register(VirtAddr(0x1000), 4096, MemAttributes::local(TAG));
        assert_eq!(t.live_regions(), 1);
        assert_eq!(t.registered_bytes(), 4096);
        assert!(t
            .check(h, TAG, VirtAddr(0x1000), 4096, AccessKind::Local)
            .is_ok());
        assert_eq!(t.deregister(h), Ok(4096));
        assert_eq!(
            t.check(h, TAG, VirtAddr(0x1000), 1, AccessKind::Local),
            Err(MemError::BadHandle)
        );
        assert_eq!(t.deregister(h), Err(MemError::BadHandle));
        assert_eq!(t.registered_bytes(), 0);
    }

    #[test]
    fn bounds_are_enforced() {
        let t = RegistrationTable::new();
        let h = t.register(VirtAddr(0x2000), 100, MemAttributes::local(TAG));
        // Interior access: fine.
        assert!(t
            .check(h, TAG, VirtAddr(0x2000 + 50), 50, AccessKind::Local)
            .is_ok());
        // One byte past the end: rejected.
        assert_eq!(
            t.check(h, TAG, VirtAddr(0x2000 + 50), 51, AccessKind::Local),
            Err(MemError::OutOfBounds)
        );
        // Below the base: rejected.
        assert_eq!(
            t.check(h, TAG, VirtAddr(0x1FFF), 2, AccessKind::Local),
            Err(MemError::OutOfBounds)
        );
    }

    #[test]
    fn protection_tag_mismatch() {
        let t = RegistrationTable::new();
        let h = t.register(VirtAddr(0x1000), 10, MemAttributes::local(TAG));
        assert_eq!(
            t.check(h, OTHER, VirtAddr(0x1000), 10, AccessKind::Local),
            Err(MemError::TagMismatch)
        );
    }

    #[test]
    fn remote_access_rights() {
        let t = RegistrationTable::new();
        let local = t.register(VirtAddr(0x1000), 10, MemAttributes::local(TAG));
        let wtarget = t.register(VirtAddr(0x3000), 10, MemAttributes::rdma_write_target(TAG));
        let rsource = t.register(VirtAddr(0x5000), 10, MemAttributes::rdma_read_source(TAG));

        assert_eq!(
            t.check(local, TAG, VirtAddr(0x1000), 10, AccessKind::RemoteWrite),
            Err(MemError::RemoteAccessDenied)
        );
        assert!(t
            .check(wtarget, TAG, VirtAddr(0x3000), 10, AccessKind::RemoteWrite)
            .is_ok());
        assert_eq!(
            t.check(wtarget, TAG, VirtAddr(0x3000), 10, AccessKind::RemoteRead),
            Err(MemError::RemoteAccessDenied)
        );
        assert!(t
            .check(rsource, TAG, VirtAddr(0x5000), 10, AccessKind::RemoteRead)
            .is_ok());
    }

    #[test]
    #[should_panic(expected = "empty region")]
    fn empty_registration_rejected() {
        let t = RegistrationTable::new();
        t.register(VirtAddr(0x1000), 0, MemAttributes::local(TAG));
    }

    #[test]
    fn handles_are_unique_across_reuse() {
        let t = RegistrationTable::new();
        let h1 = t.register(VirtAddr(0x1000), 8, MemAttributes::local(TAG));
        t.deregister(h1).unwrap();
        let h2 = t.register(VirtAddr(0x1000), 8, MemAttributes::local(TAG));
        assert_ne!(h1, h2, "stale handle must not alias a new registration");
    }
}
