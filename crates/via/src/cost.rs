//! VIA cost model, calibrated to published GigaNet cLAN / VIPL numbers
//! (≈7.5 µs one-way small-message latency, ≈110 MB/s application-level
//! bandwidth, memory registration tens of microseconds).
//!
//! The constants are deliberately centralized so ablation experiments can
//! sweep them; see `DESIGN.md` §4.3 for the calibration table.

use simnet::cost::HostCost;
use simnet::time::units::*;
use simnet::{Bandwidth, SimDuration};

/// All timing constants of the simulated VIA provider + NIC.
#[derive(Debug, Clone, Copy)]
pub struct ViaCost {
    /// Wire + switch propagation, one way.
    pub wire_latency: SimDuration,
    /// Application-level wire bandwidth (per NIC port direction).
    pub wire_bw: Bandwidth,
    /// Host cost of posting a send descriptor (build + doorbell write).
    pub post_send: SimDuration,
    /// Host cost of posting a receive descriptor.
    pub post_recv: SimDuration,
    /// Additional host cost per data segment in a descriptor.
    pub per_segment: SimDuration,
    /// NIC processing per message on the transmit side (fetch descriptor,
    /// start DMA).
    pub tx_nic_proc: SimDuration,
    /// NIC processing per message on the receive side (match descriptor,
    /// place data, write completion).
    pub rx_nic_proc: SimDuration,
    /// Host cost of one completion-queue / work-queue poll.
    pub poll: SimDuration,
    /// Extra host cost when completing via a blocking wait (interrupt +
    /// wakeup) instead of a successful poll.
    pub blocking_wakeup: SimDuration,
    /// Fixed cost of registering a memory region (pin pages, program the
    /// NIC's translation table).
    pub reg_base: SimDuration,
    /// Incremental registration cost per 4 KiB page.
    pub reg_per_page: SimDuration,
    /// Cost of deregistering a region.
    pub dereg: SimDuration,
    /// Whether the NIC supports RDMA Read (optional in the VIA spec; the
    /// cLAN did *not*, which shapes how DAFS implements direct writes).
    pub rdma_read_supported: bool,
    /// Host-side cost constants (copies, syscalls) for the few host-mediated
    /// paths (e.g. unregistered-buffer bounce).
    pub host: HostCost,
}

impl Default for ViaCost {
    fn default() -> Self {
        ViaCost {
            wire_latency: us(5),
            wire_bw: Bandwidth::mb_per_sec(110),
            post_send: SimDuration::from_nanos(600),
            post_recv: SimDuration::from_nanos(400),
            per_segment: SimDuration::from_nanos(300),
            tx_nic_proc: us(1),
            rx_nic_proc: us(1),
            poll: SimDuration::from_nanos(200),
            blocking_wakeup: us(5),
            reg_base: us(25),
            reg_per_page: SimDuration::from_nanos(1_200),
            dereg: us(8),
            rdma_read_supported: false,
            host: HostCost::default(),
        }
    }
}

impl ViaCost {
    /// Registration cost for a region of `len` bytes.
    pub fn registration(&self, len: u64) -> SimDuration {
        let pages = len.div_ceil(4096).max(1);
        self.reg_base + self.reg_per_page.saturating_mul(pages)
    }

    /// One-way delivery time for a message of `bytes`, excluding queueing:
    /// tx NIC processing + serialization + propagation + rx NIC processing.
    pub fn unloaded_one_way(&self, bytes: u64) -> SimDuration {
        self.tx_nic_proc + self.wire_bw.time_for(bytes) + self.wire_latency + self.rx_nic_proc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_message_latency_matches_clan() {
        let c = ViaCost::default();
        // post_send + one-way path for a 16-byte message should land in the
        // published 7–9 us envelope.
        let total = c.post_send + c.unloaded_one_way(16);
        let usecs = total.as_micros_f64();
        assert!((7.0..9.0).contains(&usecs), "one-way small msg = {usecs}us");
    }

    #[test]
    fn registration_scales_per_page() {
        let c = ViaCost::default();
        let one_page = c.registration(100);
        let many = c.registration(1 << 20); // 256 pages
        assert_eq!(one_page, c.reg_base + c.reg_per_page);
        assert_eq!(many, c.reg_base + c.reg_per_page * 256);
    }

    #[test]
    fn bandwidth_dominates_large_messages() {
        let c = ViaCost::default();
        let t = c.unloaded_one_way(1 << 20);
        // 1 MiB at 110 MB/s ≈ 9.5 ms; fixed costs are negligible.
        let mb_per_s = (1 << 20) as f64 / t.as_secs_f64() / 1e6;
        assert!((100.0..110.5).contains(&mb_per_s), "rate {mb_per_s} MB/s");
    }
}
