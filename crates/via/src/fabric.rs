//! The VIA fabric: NIC registry and connection management
//! (`VipConnectWait` / `VipConnectRequest` / `VipConnectAccept`).
//!
//! Connection endpoints are discriminated by `(host, port)` — standing in
//! for the VIA spec's opaque discriminator bytes. The handshake costs one
//! round trip at small-message latency, like the real connection manager.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use simnet::fault::FaultPlan;
use simnet::topo::Topology;
use simnet::{ActorCtx, HostId, Port};

use crate::cost::ViaCost;
use crate::nic::ViaNic;
use crate::vi::{Vi, ViAttributes, ViEnd, ViId};

/// Errors from connection establishment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectError {
    /// No listener at the requested (host, port).
    NoListener,
    /// The listener rejected the request.
    Rejected,
    /// The remote host is unreachable (crashed, or the link is down); the
    /// connection attempt timed out.
    Unreachable,
}

impl std::fmt::Display for ConnectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectError::NoListener => write!(f, "no listener at the requested address"),
            ConnectError::Rejected => write!(f, "connection rejected by listener"),
            ConnectError::Unreachable => write!(f, "remote host unreachable"),
        }
    }
}

impl std::error::Error for ConnectError {}

struct ConnRequest {
    client_end: Arc<ViEnd>,
    client_nic: ViaNic,
    reply: Port<ConnReply>,
}

enum ConnReply {
    Accept {
        server_end: Arc<ViEnd>,
        server_nic: ViaNic,
    },
    Reject,
}

#[derive(Default)]
struct FabricState {
    listeners: HashMap<(HostId, u16), Port<ConnRequest>>,
    faults: Option<FaultPlan>,
    topology: Option<Arc<Topology>>,
}

/// The fabric connecting all VIA NICs in the simulation.
#[derive(Clone)]
pub struct ViaFabric {
    state: Arc<Mutex<FabricState>>,
    cost: ViaCost,
    /// Per-fabric VI id allocator — fabric-scoped (not process-global) so
    /// identical runs hand out identical ids and traces stay reproducible.
    next_vi_id: Arc<AtomicU64>,
}

impl ViaFabric {
    /// Create a fabric with the given cost model (shared by all NICs opened
    /// through [`ViaFabric::open_nic`]).
    pub fn new(cost: ViaCost) -> ViaFabric {
        ViaFabric {
            state: Arc::new(Mutex::new(FabricState::default())),
            cost,
            next_vi_id: Arc::new(AtomicU64::new(1)),
        }
    }

    fn alloc_vi_id(&self) -> ViId {
        ViId(self.next_vi_id.fetch_add(1, Ordering::Relaxed))
    }

    /// The fabric-wide cost model.
    pub fn cost(&self) -> &ViaCost {
        &self.cost
    }

    /// Attach a fault plan: every VI connected after this call judges its
    /// wire deliveries against the plan, and connection attempts to a
    /// crashed host fail with [`ConnectError::Unreachable`].
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.state.lock().faults = Some(plan);
    }

    /// The currently attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.state.lock().faults.clone()
    }

    /// Attach a switched-fabric topology: every VI connected after this
    /// call routes its data-path wire deliveries through the switch graph
    /// instead of a dedicated point-to-point wire. Connection management
    /// stays on the control path.
    pub fn set_topology(&self, topo: Arc<Topology>) {
        self.state.lock().topology = Some(topo);
    }

    /// The currently attached topology, if any.
    pub fn topology(&self) -> Option<Arc<Topology>> {
        self.state.lock().topology.clone()
    }

    /// Open a NIC on `host`, attached to this fabric.
    pub fn open_nic(&self, host: simnet::Host) -> ViaNic {
        ViaNic::open(host, self.cost)
    }

    /// Start listening on `(nic's host, port)`. Returns the listener handle.
    /// Panics if the address is already in use (simulator-bug detection).
    pub fn listen(&self, nic: &ViaNic, port: u16) -> Listener {
        let key = (nic.host().id, port);
        let p: Port<ConnRequest> = Port::new(&format!("listen:{}:{}", nic.host().name(), port));
        let prev = self.state.lock().listeners.insert(key, p.clone());
        assert!(prev.is_none(), "address {key:?} already in use");
        Listener {
            requests: p,
            nic: nic.clone(),
            vi_ids: self.next_vi_id.clone(),
            state: self.state.clone(),
        }
    }

    /// Connect from `nic` to a listener at `(remote, port)` with the given
    /// endpoint attributes (`VipConnectRequest` + wait for accept).
    ///
    /// The client's protection tag is allocated from its NIC.
    pub fn connect(
        &self,
        ctx: &ActorCtx,
        nic: &ViaNic,
        remote: HostId,
        port: u16,
        attrs: ViAttributes,
    ) -> Result<Vi, ConnectError> {
        let (listener, faults, topology) = {
            let st = self.state.lock();
            (
                st.listeners.get(&(remote, port)).cloned(),
                st.faults.clone(),
                st.topology.clone(),
            )
        };
        let listener = listener.ok_or(ConnectError::NoListener)?;

        // A crashed host (either end) can't complete the handshake: the
        // request or the accept is lost and the connection manager times
        // out after one round trip.
        if let Some(f) = &faults {
            let there = ctx.now() + self.cost.unloaded_one_way(64);
            if f.host_down_at(nic.host().id, ctx.now()) || f.host_down_at(remote, there) {
                ctx.advance(self.cost.unloaded_one_way(64) * 2);
                return Err(ConnectError::Unreachable);
            }
        }

        let ptag = nic.create_ptag();
        let client_end = ViEnd::new(self.alloc_vi_id(), attrs, ptag);
        let reply: Port<ConnReply> = Port::new("conn-reply");
        // Request travels one way at small-message latency.
        let there = ctx.now() + self.cost.unloaded_one_way(64);
        listener.send(
            ctx,
            ConnRequest {
                client_end: client_end.clone(),
                client_nic: nic.clone(),
                reply: reply.clone(),
            },
            there,
        );
        match reply.recv(ctx) {
            Some(ConnReply::Accept {
                server_end,
                server_nic,
            }) => Ok(Vi {
                local: client_end,
                peer: server_end,
                nic: nic.clone(),
                peer_nic: server_nic,
                faults,
                topology,
            }),
            Some(ConnReply::Reject) | None => Err(ConnectError::Rejected),
        }
    }
}

/// A listening endpoint (`VipConnectWait` side).
pub struct Listener {
    requests: Port<ConnRequest>,
    nic: ViaNic,
    vi_ids: Arc<AtomicU64>,
    state: Arc<Mutex<FabricState>>,
}

impl Listener {
    /// Block until a connection request arrives, then accept it with the
    /// given server-side endpoint attributes. Returns the server's VI.
    pub fn accept(&self, ctx: &ActorCtx, attrs: ViAttributes) -> Option<Vi> {
        let req = self.requests.recv(ctx)?;
        let ptag = self.nic.create_ptag();
        let server_end = ViEnd::new(
            ViId(self.vi_ids.fetch_add(1, Ordering::Relaxed)),
            attrs,
            ptag,
        );
        let back = ctx.now() + self.nic.cost().unloaded_one_way(64);
        req.reply.send(
            ctx,
            ConnReply::Accept {
                server_end: server_end.clone(),
                server_nic: self.nic.clone(),
            },
            back,
        );
        let (faults, topology) = {
            let st = self.state.lock();
            (st.faults.clone(), st.topology.clone())
        };
        Some(Vi {
            local: server_end,
            peer: req.client_end,
            nic: self.nic.clone(),
            peer_nic: req.client_nic,
            faults,
            topology,
        })
    }

    /// Reject the next pending request (blocks for one).
    pub fn reject(&self, ctx: &ActorCtx) {
        if let Some(req) = self.requests.recv(ctx) {
            let back = ctx.now() + self.nic.cost().unloaded_one_way(64);
            req.reply.send(ctx, ConnReply::Reject, back);
        }
    }

    /// Stop listening; pending and future `connect` calls fail.
    pub fn close(&self, ctx: &ActorCtx) {
        self.requests.close(ctx);
    }
}
