//! Completion queues (`VipCQCreate` family).
//!
//! A VI's send and/or receive work queue may be attached to a completion
//! queue at creation time. When a descriptor completes, a token naming the
//! VI and queue is deposited on the CQ; the application then dequeues the
//! descriptor itself with `send_done`/`recv_done` on that VI. A server
//! multiplexing hundreds of client VIs polls one CQ instead of every VI —
//! exactly how the DAFS server event loop is structured.

use simnet::{ActorCtx, Port, SimTime};

use crate::desc::WhichQueue;
use crate::vi::ViId;

/// A token deposited on a CQ when some descriptor completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CqToken {
    /// The VI whose work queue completed.
    pub vi: ViId,
    /// Which of its queues.
    pub queue: WhichQueue,
}

/// A completion queue.
#[derive(Clone)]
pub struct Cq {
    port: Port<CqToken>,
}

impl Cq {
    /// Create a named CQ.
    pub fn new(name: &str) -> Cq {
        Cq {
            port: Port::new(name),
        }
    }

    /// Non-blocking poll (`VipCQDone`): a token if one has arrived.
    pub fn poll(&self, ctx: &ActorCtx) -> Option<CqToken> {
        self.port.try_recv(ctx)
    }

    /// Blocking wait (`VipCQWait`): parks the actor in virtual time until a
    /// completion arrives. Returns `None` if the CQ is closed.
    pub fn wait(&self, ctx: &ActorCtx) -> Option<CqToken> {
        self.port.recv(ctx)
    }

    /// Close the CQ; blocked waiters drain remaining tokens then get `None`.
    pub fn close(&self, ctx: &ActorCtx) {
        self.port.close(ctx);
    }

    /// Number of undelivered tokens (diagnostics).
    pub fn depth(&self) -> usize {
        self.port.len()
    }

    pub(crate) fn notify(&self, ctx: &ActorCtx, token: CqToken, at: SimTime) {
        self.port.send(ctx, token, at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::units::*;
    use simnet::SimKernel;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn token(n: u64) -> CqToken {
        CqToken {
            vi: ViId(n),
            queue: WhichQueue::Recv,
        }
    }

    #[test]
    fn poll_respects_arrival_time() {
        let k = SimKernel::new();
        let cq = Cq::new("t");
        let cq2 = cq.clone();
        k.spawn("producer", move |ctx| {
            cq2.notify(ctx, token(1), ctx.now() + us(10));
        });
        k.spawn("consumer", move |ctx| {
            ctx.advance(us(5));
            assert!(cq.poll(ctx).is_none(), "token hasn't arrived yet");
            ctx.advance(us(10));
            assert_eq!(cq.poll(ctx).unwrap().vi, ViId(1));
            assert_eq!(cq.depth(), 0);
        });
        k.run();
    }

    #[test]
    fn wait_blocks_until_token_and_close_unblocks() {
        let k = SimKernel::new();
        let cq = Cq::new("t");
        let woke_at = Arc::new(AtomicU64::new(0));
        let (cq2, w) = (cq.clone(), woke_at.clone());
        k.spawn("consumer", move |ctx| {
            let t = cq2.wait(ctx).unwrap();
            assert_eq!(t.vi, ViId(7));
            w.store(ctx.now().as_nanos(), Ordering::Relaxed);
            assert!(cq2.wait(ctx).is_none(), "closed after drain");
        });
        k.spawn("producer", move |ctx| {
            ctx.advance(us(25));
            cq.notify(ctx, token(7), ctx.now());
            cq.close(ctx);
        });
        k.run();
        assert_eq!(woke_at.load(Ordering::Relaxed), 25_000);
    }

    #[test]
    fn tokens_drain_in_arrival_order() {
        let k = SimKernel::new();
        let cq = Cq::new("t");
        let cq2 = cq.clone();
        k.spawn("producer", move |ctx| {
            // Deposited out of order; must drain by arrival time.
            cq2.notify(ctx, token(2), ctx.now() + us(20));
            cq2.notify(ctx, token(1), ctx.now() + us(10));
            cq2.notify(ctx, token(3), ctx.now() + us(30));
        });
        k.spawn("consumer", move |ctx| {
            for expect in 1..=3u64 {
                let t = cq.wait(ctx).unwrap();
                assert_eq!(t.vi, ViId(expect));
            }
        });
        k.run();
    }
}
