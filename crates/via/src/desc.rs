//! Descriptors, completions, and status codes.
//!
//! A VIA descriptor has a control segment (operation, immediate data,
//! status written back on completion), an optional address segment (remote
//! address + handle, for RDMA), and a list of local data segments. We keep
//! the same shape, minus the raw memory layout: descriptors are values the
//! application hands to `Vi::post_send` / `Vi::post_recv` and gets back from
//! the completion calls.

use simnet::{Bytes, SimTime, VirtAddr};

use crate::mem::{MemError, MemHandle};

/// Completion status written back into a descriptor's control segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViaStatus {
    /// Operation completed successfully.
    Success,
    /// A local data segment failed the translation-and-protection check.
    LocalProtectionError,
    /// The remote address segment failed the remote TPT check.
    RemoteProtectionError,
    /// Incoming data did not fit in the posted receive descriptor.
    LengthError,
    /// Descriptor was malformed (e.g. no segments, oversized transfer).
    DescriptorError,
    /// The connection was lost or the peer disconnected.
    ConnectionLost,
    /// The operation is not supported by this NIC (e.g. RDMA Read on cLAN).
    NotSupported,
}

impl ViaStatus {
    /// True for `Success`.
    pub fn is_ok(self) -> bool {
        self == ViaStatus::Success
    }
}

impl std::fmt::Display for ViaStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ViaStatus::Success => "success",
            ViaStatus::LocalProtectionError => "local protection error",
            ViaStatus::RemoteProtectionError => "remote protection error",
            ViaStatus::LengthError => "receive descriptor too small",
            ViaStatus::DescriptorError => "malformed descriptor",
            ViaStatus::ConnectionLost => "connection lost",
            ViaStatus::NotSupported => "operation not supported by NIC",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ViaStatus {}

impl From<MemError> for ViaStatus {
    fn from(e: MemError) -> ViaStatus {
        match e {
            MemError::BadHandle | MemError::TagMismatch => ViaStatus::LocalProtectionError,
            MemError::OutOfBounds => ViaStatus::LocalProtectionError,
            MemError::RemoteAccessDenied => ViaStatus::RemoteProtectionError,
        }
    }
}

/// One local gather/scatter element: a range of registered memory.
#[derive(Debug, Clone, Copy)]
pub struct DataSegment {
    /// Start address within a registered region.
    pub addr: VirtAddr,
    /// Length in bytes.
    pub len: u32,
    /// Registration handle covering the range.
    pub handle: MemHandle,
}

impl DataSegment {
    /// Construct a segment.
    pub fn new(addr: VirtAddr, len: u32, handle: MemHandle) -> DataSegment {
        DataSegment { addr, len, handle }
    }
}

/// The remote half of an RDMA operation: where to write (or read) on the
/// peer, under which remote handle.
#[derive(Debug, Clone, Copy)]
pub struct RemoteSegment {
    /// Remote virtual address.
    pub addr: VirtAddr,
    /// Remote registration handle (communicated out of band, e.g. inside a
    /// DAFS request).
    pub handle: MemHandle,
}

/// Operation requested by a send descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOp {
    /// Two-sided send: consumes a posted receive descriptor on the peer.
    Send,
    /// One-sided RDMA Write into the peer's registered memory.
    RdmaWrite,
    /// One-sided RDMA Read from the peer's registered memory (optional
    /// capability; absent on the cLAN).
    RdmaRead,
}

/// A send-queue descriptor.
#[derive(Debug, Clone)]
pub struct SendDesc {
    /// Requested operation.
    pub op: SendOp,
    /// Local gather (for Send/RdmaWrite) or scatter (for RdmaRead) segments.
    pub segs: Vec<DataSegment>,
    /// Remote segment; required for RDMA ops, ignored for `Send`.
    pub remote: Option<RemoteSegment>,
    /// Immediate data delivered to the peer in the completion (forces a
    /// receive-descriptor consumption even for RDMA Write).
    pub imm: Option<u32>,
    /// Zero-copy payload override: when set, the NIC sends these bytes
    /// directly instead of gathering from the local segments' memory. The
    /// segments still describe the transfer (they are TPT-checked and drive
    /// every cost term exactly as before); only the bounce through the
    /// registered staging region is skipped. This is the simulated form of
    /// a zero-copy RDMA path: server page → wire → client buffer.
    pub payload: Option<Bytes>,
}

impl SendDesc {
    /// A plain two-sided send gathering from `segs`.
    pub fn send(segs: Vec<DataSegment>) -> SendDesc {
        SendDesc {
            op: SendOp::Send,
            segs,
            remote: None,
            imm: None,
            payload: None,
        }
    }

    /// A plain send with immediate data.
    pub fn send_imm(segs: Vec<DataSegment>, imm: u32) -> SendDesc {
        SendDesc {
            op: SendOp::Send,
            segs,
            remote: None,
            imm: Some(imm),
            payload: None,
        }
    }

    /// An RDMA Write from local `segs` to the `remote` segment.
    pub fn rdma_write(segs: Vec<DataSegment>, remote: RemoteSegment) -> SendDesc {
        SendDesc {
            op: SendOp::RdmaWrite,
            segs,
            remote: Some(remote),
            imm: None,
            payload: None,
        }
    }

    /// An RDMA Write that also delivers immediate data (consumes a receive
    /// descriptor on the peer, signalling the write).
    pub fn rdma_write_imm(segs: Vec<DataSegment>, remote: RemoteSegment, imm: u32) -> SendDesc {
        SendDesc {
            op: SendOp::RdmaWrite,
            segs,
            remote: Some(remote),
            imm: Some(imm),
            payload: None,
        }
    }

    /// An RDMA Read from the `remote` segment into local `segs`.
    pub fn rdma_read(segs: Vec<DataSegment>, remote: RemoteSegment) -> SendDesc {
        SendDesc {
            op: SendOp::RdmaRead,
            segs,
            remote: Some(remote),
            imm: None,
            payload: None,
        }
    }

    /// Attach a zero-copy payload (must match the segments' total length;
    /// checked at post time).
    pub fn with_payload(mut self, payload: Bytes) -> SendDesc {
        self.payload = Some(payload);
        self
    }

    /// Total bytes named by the local segments.
    pub fn total_len(&self) -> u64 {
        self.segs.iter().map(|s| s.len as u64).sum()
    }
}

/// A receive-queue descriptor: scatter targets for one incoming message.
#[derive(Debug, Clone)]
pub struct RecvDesc {
    /// Scatter segments.
    pub segs: Vec<DataSegment>,
}

impl RecvDesc {
    /// Construct from scatter segments.
    pub fn new(segs: Vec<DataSegment>) -> RecvDesc {
        RecvDesc { segs }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.segs.iter().map(|s| s.len as u64).sum()
    }
}

/// Which work queue a completion came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WhichQueue {
    /// The send queue.
    Send,
    /// The receive queue.
    Recv,
}

/// A completed descriptor, as returned by `send_done`/`recv_done`/CQ polls.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Final status.
    pub status: ViaStatus,
    /// Bytes actually transferred.
    pub len: u64,
    /// Immediate data from the peer, if any.
    pub imm: Option<u32>,
    /// Which queue completed.
    pub queue: WhichQueue,
    /// Virtual time at which the operation completed (data visible /
    /// delivered). Diagnostic; the actor's clock has already advanced to at
    /// least this instant when it observes the completion.
    pub at: SimTime,
    /// The delivered frame, for receive completions of two-sided sends: a
    /// zero-copy view of the same bytes the NIC scattered into the posted
    /// receive buffer. Consumers that only parse the message can read this
    /// view instead of copying the bytes back out of registered memory.
    pub payload: Option<Bytes>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(len: u32) -> DataSegment {
        DataSegment::new(VirtAddr(0x1000), len, MemHandle(1))
    }

    #[test]
    fn constructors_set_ops() {
        let s = SendDesc::send(vec![seg(10), seg(20)]);
        assert_eq!(s.op, SendOp::Send);
        assert_eq!(s.total_len(), 30);
        assert!(s.remote.is_none());

        let r = RemoteSegment {
            addr: VirtAddr(0x9000),
            handle: MemHandle(4),
        };
        let w = SendDesc::rdma_write(vec![seg(100)], r);
        assert_eq!(w.op, SendOp::RdmaWrite);
        assert!(w.remote.is_some());
        assert!(w.imm.is_none());

        let wi = SendDesc::rdma_write_imm(vec![seg(1)], r, 42);
        assert_eq!(wi.imm, Some(42));

        let rd = SendDesc::rdma_read(vec![seg(64)], r);
        assert_eq!(rd.op, SendOp::RdmaRead);
    }

    #[test]
    fn recv_capacity_sums_segments() {
        let d = RecvDesc::new(vec![seg(16), seg(16), seg(32)]);
        assert_eq!(d.capacity(), 64);
        assert_eq!(RecvDesc::new(vec![]).capacity(), 0);
    }

    #[test]
    fn status_conversion_from_mem_errors() {
        assert_eq!(
            ViaStatus::from(MemError::BadHandle),
            ViaStatus::LocalProtectionError
        );
        assert_eq!(
            ViaStatus::from(MemError::RemoteAccessDenied),
            ViaStatus::RemoteProtectionError
        );
        assert!(ViaStatus::Success.is_ok());
        assert!(!ViaStatus::LengthError.is_ok());
    }
}
