//! # via — a Virtual Interface Architecture (VIA) provider library
//!
//! A faithful, simulation-backed reimplementation of the user-level
//! networking layer the paper's MPI-IO stack runs on: the Intel/Compaq/
//! Microsoft *Virtual Interface Architecture* as provided by the GigaNet
//! cLAN VIPL library (1997–2002 era, the direct ancestor of InfiniBand
//! verbs).
//!
//! The API mirrors VIPL's object model under Rust naming:
//!
//! | VIPL                        | here                                          |
//! |-----------------------------|-----------------------------------------------|
//! | `VipOpenNic`                | [`ViaFabric::open_nic`]                       |
//! | `VipCreatePtag`             | [`ViaNic::create_ptag`]                       |
//! | `VipRegisterMem`            | [`ViaNic::register_mem`]                      |
//! | `VipCreateVi` + connect     | [`ViaFabric::connect`] / [`Listener::accept`] |
//! | `VipPostSend`/`VipPostRecv` | [`Vi::post_send`] / [`Vi::post_recv`]         |
//! | `VipSendDone`/`VipRecvWait` | [`Vi::send_done`] / [`Vi::recv_wait`]         |
//! | `VipCQCreate`/`VipCQWait`   | [`Cq::new`] / [`Cq::wait`]                    |
//!
//! Hardware is replaced by a calibrated cost model ([`ViaCost`]) over the
//! deterministic `simnet` substrate; protection is enforced for real (RDMA
//! to an unregistered or wrongly-tagged range completes in error), and data
//! really moves between simulated host memories.

#![warn(missing_docs)]

mod cq;
mod desc;
mod fabric;
mod nic;
mod vi;

pub mod cost;
pub mod mem;

pub use cost::ViaCost;
pub use cq::{Cq, CqToken};
pub use desc::{
    Completion, DataSegment, RecvDesc, RemoteSegment, SendDesc, SendOp, ViaStatus, WhichQueue,
};
pub use fabric::{ConnectError, Listener, ViaFabric};
pub use mem::{AccessKind, MemAttributes, MemError, MemHandle, ProtectionTag};
pub use nic::{RegistrationStats, ViaNic};
pub use vi::{Reliability, Vi, ViAttributes, ViId, ViState};

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::units::*;
    use simnet::{Cluster, SimKernel, SimTime, VirtAddr};
    use std::sync::Arc;

    /// Everything a two-host test needs.
    struct TestBed {
        kernel: SimKernel,
        fabric: ViaFabric,
        client_nic: ViaNic,
        server_nic: ViaNic,
    }

    fn testbed() -> TestBed {
        testbed_with(ViaCost::default())
    }

    fn testbed_with(cost: ViaCost) -> TestBed {
        let kernel = SimKernel::new();
        let cluster = Cluster::new();
        let fabric = ViaFabric::new(cost);
        let client_nic = fabric.open_nic(cluster.add_host("client"));
        let server_nic = fabric.open_nic(cluster.add_host("server"));
        TestBed {
            kernel,
            fabric,
            client_nic,
            server_nic,
        }
    }

    /// Register a fresh buffer and return (addr, handle).
    fn reg_buf(
        ctx: &simnet::ActorCtx,
        nic: &ViaNic,
        len: usize,
        attrs: MemAttributes,
    ) -> (VirtAddr, MemHandle) {
        let addr = nic.host().mem.alloc(len);
        let h = nic.register_mem(ctx, addr, len as u64, attrs);
        (addr, h)
    }

    #[test]
    fn connect_send_recv_roundtrip() {
        let tb = testbed();
        let server_host = tb.server_nic.host().id;
        let fabric = tb.fabric.clone();
        let snic = tb.server_nic.clone();
        tb.kernel.spawn_daemon("server", move |ctx| {
            let listener = fabric.listen(&snic, 7);
            let vi = listener.accept(ctx, ViAttributes::default()).unwrap();
            let tag = vi.ptag();
            let (buf, h) = reg_buf(ctx, &snic, 4096, MemAttributes::local(tag));
            vi.post_recv(ctx, RecvDesc::new(vec![DataSegment::new(buf, 4096, h)]));
            let c = vi.recv_wait(ctx);
            assert!(c.status.is_ok());
            assert_eq!(c.len, 11);
            assert_eq!(snic.host().mem.read_vec(buf, 11), b"hello, via!");
            // Echo back.
            vi.post_send(ctx, SendDesc::send(vec![DataSegment::new(buf, 11, h)]));
            assert!(vi.send_wait(ctx).status.is_ok());
        });

        let fabric = tb.fabric.clone();
        let cnic = tb.client_nic.clone();
        tb.kernel.spawn("client", move |ctx| {
            let vi = fabric
                .connect(ctx, &cnic, server_host, 7, ViAttributes::default())
                .unwrap();
            let tag = vi.ptag();
            let (sbuf, sh) = reg_buf(ctx, &cnic, 64, MemAttributes::local(tag));
            let (rbuf, rh) = reg_buf(ctx, &cnic, 64, MemAttributes::local(tag));
            cnic.host().mem.write(sbuf, b"hello, via!");
            vi.post_recv(ctx, RecvDesc::new(vec![DataSegment::new(rbuf, 64, rh)]));
            vi.post_send(ctx, SendDesc::send(vec![DataSegment::new(sbuf, 11, sh)]));
            assert!(vi.send_wait(ctx).status.is_ok());
            let c = vi.recv_wait(ctx);
            assert!(c.status.is_ok());
            assert_eq!(cnic.host().mem.read_vec(rbuf, 11), b"hello, via!");
        });
        tb.kernel.run();
    }

    #[test]
    fn small_message_one_way_latency_in_envelope() {
        let tb = testbed();
        let server_host = tb.server_nic.host().id;
        let fabric = tb.fabric.clone();
        let snic = tb.server_nic.clone();
        let recv_time = Arc::new(parking_lot::Mutex::new((SimTime::ZERO, SimTime::ZERO)));
        let rt = recv_time.clone();
        tb.kernel.spawn_daemon("server", move |ctx| {
            let listener = fabric.listen(&snic, 7);
            let vi = listener.accept(ctx, ViAttributes::default()).unwrap();
            let tag = vi.ptag();
            let (buf, h) = reg_buf(ctx, &snic, 64, MemAttributes::local(tag));
            vi.post_recv(ctx, RecvDesc::new(vec![DataSegment::new(buf, 64, h)]));
            let c = vi.recv_wait(ctx);
            rt.lock().1 = c.at;
        });
        let fabric = tb.fabric.clone();
        let cnic = tb.client_nic.clone();
        let st = recv_time.clone();
        tb.kernel.spawn("client", move |ctx| {
            let vi = fabric
                .connect(ctx, &cnic, server_host, 7, ViAttributes::default())
                .unwrap();
            let tag = vi.ptag();
            let (sbuf, sh) = reg_buf(ctx, &cnic, 64, MemAttributes::local(tag));
            st.lock().0 = ctx.now();
            vi.post_send(ctx, SendDesc::send(vec![DataSegment::new(sbuf, 16, sh)]));
            vi.send_wait(ctx);
        });
        tb.kernel.run();
        let (sent, delivered) = *recv_time.lock();
        let one_way = delivered.since(sent).as_micros_f64();
        assert!(
            (7.0..10.0).contains(&one_way),
            "16B one-way latency {one_way}us outside the cLAN envelope"
        );
    }

    #[test]
    fn rdma_write_places_data_without_peer_cpu() {
        let tb = testbed();
        let server_host = tb.server_nic.host().id;
        let fabric = tb.fabric.clone();
        let snic = tb.server_nic.clone();
        let shared: Arc<parking_lot::Mutex<Option<(VirtAddr, MemHandle)>>> =
            Arc::new(parking_lot::Mutex::new(None));
        let slot = shared.clone();
        tb.kernel.spawn_daemon("server", move |ctx| {
            let listener = fabric.listen(&snic, 7);
            let vi = listener.accept(ctx, ViAttributes::default()).unwrap();
            let tag = vi.ptag();
            let (buf, h) = reg_buf(ctx, &snic, 4096, MemAttributes::rdma_write_target(tag));
            *slot.lock() = Some((buf, h));
            // Wait for the RDMA-with-immediate completion.
            let (ibuf, ih) = reg_buf(ctx, &snic, 64, MemAttributes::local(tag));
            vi.post_recv(ctx, RecvDesc::new(vec![DataSegment::new(ibuf, 64, ih)]));
            let cpu_before = snic.host().cpu.busy();
            let c = vi.recv_wait(ctx);
            assert!(c.status.is_ok());
            assert_eq!(c.imm, Some(99));
            assert_eq!(c.len, 2048);
            assert_eq!(snic.host().mem.read_vec(buf, 4), vec![0xAB; 4]);
            // Only the poll itself cost CPU; placement was free.
            let spent = snic.host().cpu.busy() - cpu_before;
            assert!(spent <= snic.cost().poll + us(1));
        });

        let fabric = tb.fabric.clone();
        let cnic = tb.client_nic.clone();
        tb.kernel.spawn("client", move |ctx| {
            let vi = fabric
                .connect(ctx, &cnic, server_host, 7, ViAttributes::default())
                .unwrap();
            // Busy-wait (virtual) until the server published its buffer.
            let (raddr, rh) = loop {
                if let Some(x) = *shared.lock() {
                    break x;
                }
                ctx.advance(us(10));
            };
            let tag = vi.ptag();
            let (sbuf, sh) = reg_buf(ctx, &cnic, 2048, MemAttributes::local(tag));
            cnic.host().mem.fill(sbuf, 2048, 0xAB);
            vi.post_send(
                ctx,
                SendDesc::rdma_write_imm(
                    vec![DataSegment::new(sbuf, 2048, sh)],
                    RemoteSegment {
                        addr: raddr,
                        handle: rh,
                    },
                    99,
                ),
            );
            assert!(vi.send_wait(ctx).status.is_ok());
        });
        tb.kernel.run();
    }

    #[test]
    fn rdma_write_to_unwritable_region_is_protection_error() {
        let tb = testbed();
        let server_host = tb.server_nic.host().id;
        let fabric = tb.fabric.clone();
        let snic = tb.server_nic.clone();
        let shared: Arc<parking_lot::Mutex<Option<(VirtAddr, MemHandle)>>> =
            Arc::new(parking_lot::Mutex::new(None));
        let slot = shared.clone();
        tb.kernel.spawn_daemon("server", move |ctx| {
            let listener = fabric.listen(&snic, 7);
            let vi = listener.accept(ctx, ViAttributes::default()).unwrap();
            let tag = vi.ptag();
            // Local-only registration: remote writes must be denied.
            let (buf, h) = reg_buf(ctx, &snic, 4096, MemAttributes::local(tag));
            *slot.lock() = Some((buf, h));
            // Park forever; nothing should arrive.
            let _ = vi.recv_wait(ctx);
        });
        let fabric = tb.fabric.clone();
        let cnic = tb.client_nic.clone();
        tb.kernel.spawn("client", move |ctx| {
            let vi = fabric
                .connect(ctx, &cnic, server_host, 7, ViAttributes::default())
                .unwrap();
            let (raddr, rh) = loop {
                if let Some(x) = *shared.lock() {
                    break x;
                }
                ctx.advance(us(10));
            };
            let tag = vi.ptag();
            let (sbuf, sh) = reg_buf(ctx, &cnic, 64, MemAttributes::local(tag));
            vi.post_send(
                ctx,
                SendDesc::rdma_write(
                    vec![DataSegment::new(sbuf, 64, sh)],
                    RemoteSegment {
                        addr: raddr,
                        handle: rh,
                    },
                ),
            );
            let c = vi.send_wait(ctx);
            assert_eq!(c.status, ViaStatus::RemoteProtectionError);
            assert_eq!(vi.state(), ViState::Error);
        });
        tb.kernel.run();
    }

    #[test]
    fn send_without_posted_recv_breaks_reliable_vi() {
        let tb = testbed();
        let server_host = tb.server_nic.host().id;
        let fabric = tb.fabric.clone();
        let snic = tb.server_nic.clone();
        tb.kernel.spawn_daemon("server", move |ctx| {
            let listener = fabric.listen(&snic, 7);
            let vi = listener.accept(ctx, ViAttributes::default()).unwrap();
            // No post_recv: reliable VI must break on arrival.
            let c = vi.recv_wait(ctx);
            assert_eq!(c.status, ViaStatus::ConnectionLost);
            assert_eq!(vi.state(), ViState::Error);
        });
        let fabric = tb.fabric.clone();
        let cnic = tb.client_nic.clone();
        tb.kernel.spawn("client", move |ctx| {
            let vi = fabric
                .connect(ctx, &cnic, server_host, 7, ViAttributes::default())
                .unwrap();
            let tag = vi.ptag();
            let (sbuf, sh) = reg_buf(ctx, &cnic, 64, MemAttributes::local(tag));
            vi.post_send(ctx, SendDesc::send(vec![DataSegment::new(sbuf, 8, sh)]));
            vi.send_wait(ctx);
        });
        tb.kernel.run();
    }

    #[test]
    fn unreliable_vi_drops_without_descriptor() {
        let attrs = ViAttributes {
            reliability: Reliability::Unreliable,
            ..Default::default()
        };
        let tb = testbed();
        let server_host = tb.server_nic.host().id;
        let fabric = tb.fabric.clone();
        let snic = tb.server_nic.clone();
        let sattrs = attrs.clone();
        tb.kernel.spawn_daemon("server", move |ctx| {
            let listener = fabric.listen(&snic, 7);
            let vi = listener.accept(ctx, sattrs).unwrap();
            let c = vi.recv_wait(ctx);
            assert_eq!(c.status, ViaStatus::DescriptorError);
            assert_eq!(vi.state(), ViState::Connected, "unreliable VI survives");
        });
        let fabric = tb.fabric.clone();
        let cnic = tb.client_nic.clone();
        tb.kernel.spawn("client", move |ctx| {
            let vi = fabric.connect(ctx, &cnic, server_host, 7, attrs).unwrap();
            let tag = vi.ptag();
            let (sbuf, sh) = reg_buf(ctx, &cnic, 64, MemAttributes::local(tag));
            vi.post_send(ctx, SendDesc::send(vec![DataSegment::new(sbuf, 8, sh)]));
            vi.send_wait(ctx);
        });
        tb.kernel.run();
    }

    #[test]
    fn oversized_send_is_descriptor_error() {
        let tb = testbed();
        let server_host = tb.server_nic.host().id;
        let fabric = tb.fabric.clone();
        let snic = tb.server_nic.clone();
        tb.kernel.spawn_daemon("server", move |ctx| {
            let listener = fabric.listen(&snic, 7);
            let _vi = listener.accept(ctx, ViAttributes::default());
            ctx.advance(secs(1));
        });
        let fabric = tb.fabric.clone();
        let cnic = tb.client_nic.clone();
        tb.kernel.spawn("client", move |ctx| {
            let vi = fabric
                .connect(ctx, &cnic, server_host, 7, ViAttributes::default())
                .unwrap();
            let tag = vi.ptag();
            let big = 128 << 10; // over the 64 KiB MTU
            let (sbuf, sh) = reg_buf(ctx, &cnic, big, MemAttributes::local(tag));
            vi.post_send(
                ctx,
                SendDesc::send(vec![DataSegment::new(sbuf, big as u32, sh)]),
            );
            assert_eq!(vi.send_wait(ctx).status, ViaStatus::DescriptorError);
        });
        tb.kernel.run();
    }

    #[test]
    fn unregistered_send_buffer_is_local_protection_error() {
        let tb = testbed();
        let server_host = tb.server_nic.host().id;
        let fabric = tb.fabric.clone();
        let snic = tb.server_nic.clone();
        tb.kernel.spawn_daemon("server", move |ctx| {
            let listener = fabric.listen(&snic, 7);
            let _vi = listener.accept(ctx, ViAttributes::default());
            ctx.advance(secs(1));
        });
        let fabric = tb.fabric.clone();
        let cnic = tb.client_nic.clone();
        tb.kernel.spawn("client", move |ctx| {
            let vi = fabric
                .connect(ctx, &cnic, server_host, 7, ViAttributes::default())
                .unwrap();
            let tag = vi.ptag();
            let (sbuf, sh) = reg_buf(ctx, &cnic, 64, MemAttributes::local(tag));
            // Deregister, then try to send under the stale handle.
            cnic.deregister_mem(ctx, sh).unwrap();
            vi.post_send(ctx, SendDesc::send(vec![DataSegment::new(sbuf, 8, sh)]));
            assert_eq!(vi.send_wait(ctx).status, ViaStatus::LocalProtectionError);
        });
        tb.kernel.run();
    }

    #[test]
    fn rdma_read_unsupported_on_default_nic() {
        let tb = testbed();
        let server_host = tb.server_nic.host().id;
        let fabric = tb.fabric.clone();
        let snic = tb.server_nic.clone();
        tb.kernel.spawn_daemon("server", move |ctx| {
            let listener = fabric.listen(&snic, 7);
            let _vi = listener.accept(ctx, ViAttributes::default());
            ctx.advance(secs(1));
        });
        let fabric = tb.fabric.clone();
        let cnic = tb.client_nic.clone();
        tb.kernel.spawn("client", move |ctx| {
            let vi = fabric
                .connect(ctx, &cnic, server_host, 7, ViAttributes::default())
                .unwrap();
            let tag = vi.ptag();
            let (b, h) = reg_buf(ctx, &cnic, 64, MemAttributes::local(tag));
            vi.post_send(
                ctx,
                SendDesc::rdma_read(
                    vec![DataSegment::new(b, 64, h)],
                    RemoteSegment {
                        addr: VirtAddr(0x1000),
                        handle: MemHandle(1),
                    },
                ),
            );
            assert_eq!(vi.send_wait(ctx).status, ViaStatus::NotSupported);
        });
        tb.kernel.run();
    }

    #[test]
    fn rdma_read_works_when_enabled() {
        let cost = ViaCost {
            rdma_read_supported: true,
            ..ViaCost::default()
        };
        let tb = testbed_with(cost);
        let server_host = tb.server_nic.host().id;
        let fabric = tb.fabric.clone();
        let snic = tb.server_nic.clone();
        let shared: Arc<parking_lot::Mutex<Option<(VirtAddr, MemHandle)>>> =
            Arc::new(parking_lot::Mutex::new(None));
        let slot = shared.clone();
        tb.kernel.spawn_daemon("server", move |ctx| {
            let listener = fabric.listen(&snic, 7);
            let vi = listener.accept(ctx, ViAttributes::default()).unwrap();
            let tag = vi.ptag();
            let (buf, h) = reg_buf(ctx, &snic, 256, MemAttributes::rdma_read_source(tag));
            snic.host().mem.write(buf, b"read me remotely");
            *slot.lock() = Some((buf, h));
            ctx.advance(secs(1));
        });
        let fabric = tb.fabric.clone();
        let cnic = tb.client_nic.clone();
        tb.kernel.spawn("client", move |ctx| {
            let vi = fabric
                .connect(ctx, &cnic, server_host, 7, ViAttributes::default())
                .unwrap();
            let (raddr, rh) = loop {
                if let Some(x) = *shared.lock() {
                    break x;
                }
                ctx.advance(us(10));
            };
            let tag = vi.ptag();
            let (dst, dh) = reg_buf(ctx, &cnic, 16, MemAttributes::local(tag));
            vi.post_send(
                ctx,
                SendDesc::rdma_read(
                    vec![DataSegment::new(dst, 16, dh)],
                    RemoteSegment {
                        addr: raddr,
                        handle: rh,
                    },
                ),
            );
            let c = vi.send_wait(ctx);
            assert!(c.status.is_ok());
            assert_eq!(cnic.host().mem.read_vec(dst, 16), b"read me remotely");
        });
        tb.kernel.run();
    }

    #[test]
    fn completion_queue_multiplexes_vis() {
        let tb = testbed();
        let server_host = tb.server_nic.host().id;
        let fabric = tb.fabric.clone();
        let snic = tb.server_nic.clone();
        const CLIENTS: usize = 4;
        tb.kernel.spawn_daemon("server", move |ctx| {
            let cq = Cq::new("server-cq");
            let listener = fabric.listen(&snic, 7);
            let mut vis = std::collections::HashMap::new();
            for _ in 0..CLIENTS {
                let attrs = ViAttributes {
                    recv_cq: Some(cq.clone()),
                    ..Default::default()
                };
                let vi = listener.accept(ctx, attrs).unwrap();
                let tag = vi.ptag();
                let (buf, h) = reg_buf(ctx, &snic, 64, MemAttributes::local(tag));
                vi.post_recv(ctx, RecvDesc::new(vec![DataSegment::new(buf, 64, h)]));
                vis.insert(vi.id(), (vi, buf));
            }
            let mut seen = Vec::new();
            for _ in 0..CLIENTS {
                let tok = cq.wait(ctx).unwrap();
                assert_eq!(tok.queue, WhichQueue::Recv);
                let (vi, buf) = &vis[&tok.vi];
                let c = vi.recv_done(ctx).expect("token implies a message");
                assert!(c.status.is_ok());
                seen.push(snic.host().mem.read_vec(*buf, 1)[0]);
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..CLIENTS as u8).collect::<Vec<_>>());
        });
        for i in 0..CLIENTS {
            let fabric = tb.fabric.clone();
            let cnic = tb.client_nic.clone();
            tb.kernel.spawn(&format!("client{i}"), move |ctx| {
                // Stagger so arrival order is deterministic but distinct.
                ctx.advance(us(i as u64 * 50));
                let vi = fabric
                    .connect(ctx, &cnic, server_host, 7, ViAttributes::default())
                    .unwrap();
                let tag = vi.ptag();
                let (sbuf, sh) = reg_buf(ctx, &cnic, 8, MemAttributes::local(tag));
                cnic.host().mem.write(sbuf, &[i as u8]);
                vi.post_send(ctx, SendDesc::send(vec![DataSegment::new(sbuf, 1, sh)]));
                vi.send_wait(ctx);
            });
        }
        tb.kernel.run();
    }

    #[test]
    fn disconnect_is_observed_by_peer() {
        let tb = testbed();
        let server_host = tb.server_nic.host().id;
        let fabric = tb.fabric.clone();
        let snic = tb.server_nic.clone();
        tb.kernel.spawn_daemon("server", move |ctx| {
            let listener = fabric.listen(&snic, 7);
            let vi = listener.accept(ctx, ViAttributes::default()).unwrap();
            let c = vi.recv_wait(ctx);
            assert_eq!(c.status, ViaStatus::ConnectionLost);
            assert_eq!(vi.state(), ViState::Disconnected);
        });
        let fabric = tb.fabric.clone();
        let cnic = tb.client_nic.clone();
        tb.kernel.spawn("client", move |ctx| {
            let vi = fabric
                .connect(ctx, &cnic, server_host, 7, ViAttributes::default())
                .unwrap();
            vi.disconnect(ctx);
        });
        tb.kernel.run();
    }

    #[test]
    fn connect_to_missing_listener_fails() {
        let tb = testbed();
        let server_host = tb.server_nic.host().id;
        let fabric = tb.fabric.clone();
        let cnic = tb.client_nic.clone();
        tb.kernel.spawn("client", move |ctx| {
            let r = fabric.connect(ctx, &cnic, server_host, 99, ViAttributes::default());
            assert_eq!(r.err(), Some(ConnectError::NoListener));
        });
        tb.kernel.run();
    }

    #[test]
    fn multi_segment_gather_scatter() {
        // Sender gathers from three disjoint registered segments; receiver
        // scatters into two — byte order must be preserved across both
        // descriptor shapes.
        let tb = testbed();
        let server_host = tb.server_nic.host().id;
        let fabric = tb.fabric.clone();
        let snic = tb.server_nic.clone();
        tb.kernel.spawn_daemon("server", move |ctx| {
            let listener = fabric.listen(&snic, 7);
            let vi = listener.accept(ctx, ViAttributes::default()).unwrap();
            let tag = vi.ptag();
            let (b1, h1) = reg_buf(ctx, &snic, 64, MemAttributes::local(tag));
            let (b2, h2) = reg_buf(ctx, &snic, 64, MemAttributes::local(tag));
            vi.post_recv(
                ctx,
                RecvDesc::new(vec![
                    DataSegment::new(b1, 4, h1),
                    DataSegment::new(b2, 64, h2),
                ]),
            );
            let c = vi.recv_wait(ctx);
            assert!(c.status.is_ok());
            assert_eq!(c.len, 9);
            // First 4 bytes scatter into b1, the remaining 5 into b2.
            assert_eq!(snic.host().mem.read_vec(b1, 4), b"AABB");
            assert_eq!(snic.host().mem.read_vec(b2, 5), b"BCCCC");
        });
        let fabric = tb.fabric.clone();
        let cnic = tb.client_nic.clone();
        tb.kernel.spawn("client", move |ctx| {
            let vi = fabric
                .connect(ctx, &cnic, server_host, 7, ViAttributes::default())
                .unwrap();
            let tag = vi.ptag();
            let (s1, h1) = reg_buf(ctx, &cnic, 16, MemAttributes::local(tag));
            let (s2, h2) = reg_buf(ctx, &cnic, 16, MemAttributes::local(tag));
            let (s3, h3) = reg_buf(ctx, &cnic, 16, MemAttributes::local(tag));
            cnic.host().mem.write(s1, b"AA");
            cnic.host().mem.write(s2, b"BBB");
            cnic.host().mem.write(s3, b"CCCC");
            vi.post_send(
                ctx,
                SendDesc::send(vec![
                    DataSegment::new(s1, 2, h1),
                    DataSegment::new(s2, 3, h2),
                    DataSegment::new(s3, 4, h3),
                ]),
            );
            assert!(vi.send_wait(ctx).status.is_ok());
        });
        tb.kernel.run();
    }

    #[test]
    fn scatter_overflow_is_length_error() {
        // A message larger than the posted descriptor's total capacity must
        // complete with LengthError, not corrupt memory.
        let tb = testbed();
        let server_host = tb.server_nic.host().id;
        let fabric = tb.fabric.clone();
        let snic = tb.server_nic.clone();
        tb.kernel.spawn_daemon("server", move |ctx| {
            let listener = fabric.listen(&snic, 7);
            let vi = listener.accept(ctx, ViAttributes::default()).unwrap();
            let tag = vi.ptag();
            let (buf, h) = reg_buf(ctx, &snic, 64, MemAttributes::local(tag));
            snic.host().mem.fill(buf, 8, 0xEE);
            vi.post_recv(ctx, RecvDesc::new(vec![DataSegment::new(buf, 8, h)]));
            let c = vi.recv_wait(ctx);
            assert_eq!(c.status, ViaStatus::LengthError);
            // The undersized buffer was not touched.
            assert_eq!(snic.host().mem.read_vec(buf, 8), vec![0xEE; 8]);
        });
        let fabric = tb.fabric.clone();
        let cnic = tb.client_nic.clone();
        tb.kernel.spawn("client", move |ctx| {
            let vi = fabric
                .connect(ctx, &cnic, server_host, 7, ViAttributes::default())
                .unwrap();
            let tag = vi.ptag();
            let (sbuf, sh) = reg_buf(ctx, &cnic, 64, MemAttributes::local(tag));
            vi.post_send(ctx, SendDesc::send(vec![DataSegment::new(sbuf, 16, sh)]));
            vi.send_wait(ctx);
        });
        tb.kernel.run();
    }

    #[test]
    fn large_transfer_bandwidth_approaches_wire_rate() {
        let tb = testbed();
        let server_host = tb.server_nic.host().id;
        let fabric = tb.fabric.clone();
        let snic = tb.server_nic.clone();
        const MSG: usize = 64 << 10;
        const COUNT: usize = 64;
        let span = Arc::new(parking_lot::Mutex::new((SimTime::ZERO, SimTime::ZERO)));
        let sp = span.clone();
        tb.kernel.spawn_daemon("server", move |ctx| {
            let listener = fabric.listen(&snic, 7);
            let vi = listener.accept(ctx, ViAttributes::default()).unwrap();
            let tag = vi.ptag();
            let (buf, h) = reg_buf(ctx, &snic, MSG, MemAttributes::local(tag));
            for _ in 0..COUNT {
                vi.post_recv(
                    ctx,
                    RecvDesc::new(vec![DataSegment::new(buf, MSG as u32, h)]),
                );
            }
            let mut first = SimTime::ZERO;
            let mut last = SimTime::ZERO;
            for i in 0..COUNT {
                let c = vi.recv_wait(ctx);
                assert!(c.status.is_ok());
                if i == 0 {
                    first = c.at;
                }
                last = c.at;
            }
            *sp.lock() = (first, last);
        });
        let fabric = tb.fabric.clone();
        let cnic = tb.client_nic.clone();
        tb.kernel.spawn("client", move |ctx| {
            let vi = fabric
                .connect(ctx, &cnic, server_host, 7, ViAttributes::default())
                .unwrap();
            let tag = vi.ptag();
            let (sbuf, sh) = reg_buf(ctx, &cnic, MSG, MemAttributes::local(tag));
            // Pipeline all sends; the NIC wire serializes them.
            for _ in 0..COUNT {
                vi.post_send(
                    ctx,
                    SendDesc::send(vec![DataSegment::new(sbuf, MSG as u32, sh)]),
                );
            }
            for _ in 0..COUNT {
                vi.send_wait(ctx);
            }
        });
        tb.kernel.run();
        let (first, last) = *span.lock();
        // (COUNT-1) messages delivered between first and last arrival.
        let bytes = (MSG * (COUNT - 1)) as f64;
        let rate = bytes / last.since(first).as_secs_f64() / 1e6;
        assert!(
            (100.0..=110.5).contains(&rate),
            "pipelined bandwidth {rate} MB/s should approach the 110 MB/s wire"
        );
    }
}
