//! The simulated VIA NIC (`VipOpenNic` and memory/ptag management).
//!
//! Each host opens one NIC. The NIC owns the two wire directions (transmit
//! and receive serial resources — the receive port is what saturates in the
//! many-clients-one-server experiments), the translation-and-protection
//! table, and the registration cost accounting. Registration charges *host
//! CPU* time: that cost, and caching it away, is one of the paper-family's
//! central measurements.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use simnet::{ActorCtx, ByteMeter, Host, Resource, SimDuration, VirtAddr};

use crate::cost::ViaCost;
use crate::mem::{MemAttributes, MemError, MemHandle, ProtectionTag, RegistrationTable};

pub(crate) struct NicInner {
    pub host: Host,
    pub cost: ViaCost,
    pub tx_wire: Resource,
    pub rx_wire: Resource,
    pub table: RegistrationTable,
    next_ptag: AtomicU64,
    /// Registration activity, for the R-T2 experiment.
    pub reg_meter: ByteMeter,
    pub dereg_meter: ByteMeter,
    pub reg_cpu: AtomicU64,
}

/// A point-in-time snapshot of the NIC's registration counters, read with
/// [`ViaNic::registration_stats`]. Named fields replace the old positional
/// tuple so call sites can't transpose the counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistrationStats {
    /// `VipRegisterMem` calls completed.
    pub registrations: u64,
    /// Total bytes registered across those calls.
    pub bytes: u64,
    /// `VipDeregisterMem` calls completed.
    pub deregistrations: u64,
}

/// Handle to a host's VIA NIC. Cloning shares the NIC.
#[derive(Clone)]
pub struct ViaNic {
    pub(crate) inner: Arc<NicInner>,
}

impl ViaNic {
    /// Open the NIC on `host` with the given cost model (`VipOpenNic`).
    pub fn open(host: Host, cost: ViaCost) -> ViaNic {
        let name = host.name().to_string();
        ViaNic {
            inner: Arc::new(NicInner {
                tx_wire: Resource::new(&format!("{name}.via.tx")),
                rx_wire: Resource::new(&format!("{name}.via.rx")),
                table: RegistrationTable::new(),
                next_ptag: AtomicU64::new(1),
                reg_meter: ByteMeter::new(),
                dereg_meter: ByteMeter::new(),
                reg_cpu: AtomicU64::new(0),
                host,
                cost,
            }),
        }
    }

    /// The host this NIC is installed in.
    pub fn host(&self) -> &Host {
        &self.inner.host
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &ViaCost {
        &self.inner.cost
    }

    /// Allocate a fresh protection tag (`VipCreatePtag`).
    pub fn create_ptag(&self) -> ProtectionTag {
        ProtectionTag(self.inner.next_ptag.fetch_add(1, Ordering::Relaxed))
    }

    /// Register memory with the NIC (`VipRegisterMem`).
    ///
    /// Charges the calling host the full pin-and-program cost — this is the
    /// expensive operation that DAFS's client-side registration cache exists
    /// to amortize.
    pub fn register_mem(
        &self,
        ctx: &ActorCtx,
        addr: VirtAddr,
        len: u64,
        attrs: MemAttributes,
    ) -> MemHandle {
        assert!(
            self.inner.host.mem.is_mapped(addr, len as usize),
            "registering unmapped memory [{addr} + {len})"
        );
        let cost = self.inner.cost.registration(len);
        self.inner.host.compute(ctx, cost);
        self.inner.reg_meter.record(len);
        self.inner
            .reg_cpu
            .fetch_add(cost.as_nanos(), Ordering::Relaxed);
        ctx.metrics().byte_meter("via.mem.registered").record(len);
        let h = self.inner.table.register(addr, len, attrs);
        ctx.trace(
            "via",
            "mem.register",
            &[
                ("handle", obs::Value::U64(h.0)),
                ("len", obs::Value::U64(len)),
                ("cost_ns", obs::Value::U64(cost.as_nanos())),
            ],
        );
        h
    }

    /// Register memory that was pinned and programmed at boot time (server
    /// buffer pools). Costs nothing at call time — the model for a DAFS
    /// server that registers its buffer cache once at startup. Client code
    /// must use [`ViaNic::register_mem`], which charges the real cost.
    pub fn register_mem_prepinned(
        &self,
        addr: VirtAddr,
        len: u64,
        attrs: MemAttributes,
    ) -> MemHandle {
        assert!(
            self.inner.host.mem.is_mapped(addr, len as usize),
            "registering unmapped memory [{addr} + {len})"
        );
        self.inner.table.register(addr, len, attrs)
    }

    /// Deregister memory (`VipDeregisterMem`).
    pub fn deregister_mem(&self, ctx: &ActorCtx, h: MemHandle) -> Result<(), MemError> {
        let len = self.inner.table.deregister(h)?;
        self.inner.host.compute(ctx, self.inner.cost.dereg);
        self.inner.dereg_meter.record(len);
        self.inner
            .reg_cpu
            .fetch_add(self.inner.cost.dereg.as_nanos(), Ordering::Relaxed);
        ctx.metrics().counter("via.mem.deregistered").inc();
        ctx.trace(
            "via",
            "mem.deregister",
            &[
                ("handle", obs::Value::U64(h.0)),
                ("len", obs::Value::U64(len)),
            ],
        );
        Ok(())
    }

    /// The NIC's translation-and-protection table (read access for tests
    /// and the remote-validation path).
    pub fn table(&self) -> &RegistrationTable {
        &self.inner.table
    }

    /// Snapshot of the NIC's registration counters.
    pub fn registration_stats(&self) -> RegistrationStats {
        RegistrationStats {
            registrations: self.inner.reg_meter.ops.get(),
            bytes: self.inner.reg_meter.bytes.get(),
            deregistrations: self.inner.dereg_meter.ops.get(),
        }
    }

    /// Total host CPU consumed by registration/deregistration so far.
    pub fn registration_cpu(&self) -> SimDuration {
        SimDuration::from_nanos(self.inner.reg_cpu.load(Ordering::Relaxed))
    }

    /// Transmit-direction wire (diagnostics/utilization).
    pub fn tx_wire(&self) -> &Resource {
        &self.inner.tx_wire
    }

    /// Receive-direction wire (diagnostics/utilization).
    pub fn rx_wire(&self) -> &Resource {
        &self.inner.rx_wire
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Cluster, SimKernel, SimTime};

    fn setup() -> (SimKernel, ViaNic) {
        let k = SimKernel::new();
        let cluster = Cluster::new();
        let host = cluster.add_host("n0");
        let nic = ViaNic::open(host, ViaCost::default());
        (k, nic)
    }

    #[test]
    fn registration_charges_cpu_and_tracks_bytes() {
        let (k, nic) = setup();
        let n2 = nic.clone();
        k.spawn("app", move |ctx| {
            let buf = n2.host().mem.alloc(64 << 10);
            let tag = n2.create_ptag();
            let h = n2.register_mem(ctx, buf, 64 << 10, MemAttributes::local(tag));
            // 16 pages + base.
            let expect = n2.cost().registration(64 << 10);
            assert_eq!(ctx.now(), SimTime::ZERO + expect);
            n2.deregister_mem(ctx, h).unwrap();
        });
        k.run();
        let rs = nic.registration_stats();
        assert_eq!(
            (rs.registrations, rs.bytes, rs.deregistrations),
            (1, 64 << 10, 1)
        );
        assert!(nic.registration_cpu() > SimDuration::ZERO);
        assert_eq!(nic.host().cpu.busy(), nic.registration_cpu());
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn registering_wild_pointer_is_a_simulator_bug() {
        let (k, nic) = setup();
        k.spawn("app", move |ctx| {
            let tag = nic.create_ptag();
            nic.register_mem(ctx, VirtAddr(0xDEAD000), 16, MemAttributes::local(tag));
        });
        k.run();
    }

    #[test]
    fn ptags_are_unique() {
        let (_k, nic) = setup();
        let a = nic.create_ptag();
        let b = nic.create_ptag();
        assert_ne!(a, b);
    }
}
