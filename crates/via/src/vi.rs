//! The Virtual Interface itself: paired send/receive work queues, the data
//! path, and RDMA.
//!
//! Posting is asynchronous, as on hardware: `post_send` returns after the
//! doorbell write; the data path (NIC processing, wire serialization,
//! cut-through through the peer's receive port) is modeled with serial
//! resources, and the completion is deposited on the send queue (and CQ) at
//! its future completion instant. Receive-side data placement is performed
//! by the simulated NIC with no host CPU charge — the essence of why DAFS
//! direct I/O leaves the client CPU idle.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use simnet::fault::FaultPlan;
use simnet::topo::Topology;
use simnet::{buf, ActorCtx, Bytes, Port, SimTime};

use crate::cq::{Cq, CqToken};
use crate::desc::{Completion, RecvDesc, SendDesc, SendOp, ViaStatus, WhichQueue};
use crate::mem::{AccessKind, ProtectionTag};
use crate::nic::ViaNic;

/// Unique VI endpoint id, allocated per fabric (so two simulations in the
/// same process — or the same simulation run twice — see identical ids,
/// keeping trace streams byte-reproducible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViId(pub u64);

/// Reliability level of a VI (the VIA spec's three levels collapse to two
/// observable behaviours in this model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reliability {
    /// Messages with no posted receive descriptor are silently dropped.
    Unreliable,
    /// A message with no posted receive descriptor is a connection error
    /// (VIA reliable-delivery semantics). DAFS runs on this level.
    #[default]
    Reliable,
}

/// Creation-time attributes of a VI.
#[derive(Clone, Default)]
pub struct ViAttributes {
    /// Reliability level.
    pub reliability: Reliability,
    /// Maximum bytes in a two-sided send (the cLAN's 64 KiB MTU). RDMA
    /// transfers are not subject to this limit. `None` = 64 KiB default.
    pub max_transfer: Option<u64>,
    /// CQ to notify on send completions.
    pub send_cq: Option<Cq>,
    /// CQ to notify on receive completions.
    pub recv_cq: Option<Cq>,
}

impl ViAttributes {
    /// Effective two-sided-send MTU.
    pub fn max_transfer(&self) -> u64 {
        self.max_transfer.unwrap_or(64 << 10)
    }
}

/// Connection state of an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViState {
    /// Connected and healthy.
    Connected,
    /// Peer disconnected cleanly.
    Disconnected,
    /// A reliability violation or protection error broke the connection.
    Error,
}

pub(crate) struct Arrived {
    pub at: SimTime,
    pub msg: WireMsg,
}

pub(crate) enum WireMsg {
    /// Two-sided message payload: a shared view of the sender's gathered
    /// frame (or zero-copy payload), never a per-hop copy.
    Data { bytes: Bytes, imm: Option<u32> },
    /// RDMA Write with immediate data: payload already placed; this consumes
    /// a receive descriptor to signal the peer.
    RdmaWriteImm { imm: u32, len: u64 },
    /// Clean disconnect notification.
    Disconnect,
    /// The connection broke (injected fault on a reliable VI): the receiving
    /// end transitions to `Error` and surfaces `ConnectionLost`.
    Broken,
}

struct PostedRecv {
    desc: RecvDesc,
    posted_at: SimTime,
}

/// One endpoint's queues and state; shared with the peer for delivery.
pub(crate) struct ViEnd {
    pub id: ViId,
    pub incoming: Port<Arrived>,
    pub send_completions: Port<Completion>,
    posted_recvs: Mutex<VecDeque<PostedRecv>>,
    state: Mutex<ViState>,
    pub attrs: ViAttributes,
    pub ptag: ProtectionTag,
}

impl ViEnd {
    pub(crate) fn new(id: ViId, attrs: ViAttributes, ptag: ProtectionTag) -> Arc<ViEnd> {
        Arc::new(ViEnd {
            id,
            incoming: Port::new(&format!("vi{}.rq", id.0)),
            send_completions: Port::new(&format!("vi{}.sq", id.0)),
            posted_recvs: Mutex::new(VecDeque::new()),
            state: Mutex::new(ViState::Connected),
            attrs,
            ptag,
        })
    }
}

/// A connected Virtual Interface endpoint.
///
/// Owned by exactly one actor; the handle is not `Clone` because VIA work
/// queues are single-owner objects.
pub struct Vi {
    pub(crate) local: Arc<ViEnd>,
    pub(crate) peer: Arc<ViEnd>,
    pub(crate) nic: ViaNic,
    pub(crate) peer_nic: ViaNic,
    /// Fault plan captured from the fabric at connection time; `None` means
    /// the data path is exactly the pre-fault-injection code path.
    pub(crate) faults: Option<FaultPlan>,
    /// Switched-fabric topology captured from the fabric at connection
    /// time; `None` means the point-to-point wire model (unchanged).
    pub(crate) topology: Option<Arc<Topology>>,
}

impl Vi {
    /// This endpoint's id (appears in CQ tokens).
    pub fn id(&self) -> ViId {
        self.local.id
    }

    /// Current connection state.
    pub fn state(&self) -> ViState {
        *self.local.state.lock()
    }

    /// The local NIC.
    pub fn nic(&self) -> &ViaNic {
        &self.nic
    }

    /// The protection tag this endpoint was created with.
    pub fn ptag(&self) -> ProtectionTag {
        self.local.ptag
    }

    fn complete_send(&self, ctx: &ActorCtx, c: Completion) {
        let at = c.at;
        ctx.metrics().counter("via.completions").inc();
        if ctx.obs().enabled() {
            ctx.trace(
                "via",
                "completion",
                &[
                    ("vi", obs::Value::U64(self.local.id.0)),
                    ("status", obs::Value::Str(&format!("{:?}", c.status))),
                    ("len", obs::Value::U64(c.len)),
                    ("at_ns", obs::Value::U64(at.as_nanos())),
                ],
            );
        }
        self.local.send_completions.send(ctx, c, at);
        if let Some(cq) = &self.local.attrs.send_cq {
            cq.notify(
                ctx,
                CqToken {
                    vi: self.local.id,
                    queue: WhichQueue::Send,
                },
                at,
            );
        }
    }

    /// Judge a wire delivery against the fault plan. `Ok` carries the
    /// (possibly jittered) arrival instant; `Err` means the message was
    /// lost. With no plan this is a straight pass-through.
    fn faulted_delivery(&self, ctx: &ActorCtx, delivery: SimTime) -> Result<SimTime, ()> {
        let Some(f) = &self.faults else {
            return Ok(delivery);
        };
        let (src, dst) = (self.nic.host().id, self.peer_nic.host().id);
        if f.should_drop(ctx, src, dst, delivery).is_some() {
            return Err(());
        }
        Ok(f.jitter(ctx, src, dst, delivery))
    }

    /// A wire message on this reliable VI was lost: VIA reliable-delivery
    /// semantics break the connection. The local endpoint enters `Error`
    /// and the lost descriptor completes with `ConnectionLost` (instead of
    /// hanging); the peer observes `ConnectionLost` at the instant the data
    /// would have arrived, so blocked receivers wake deterministically.
    fn fault_break(&self, ctx: &ActorCtx, at: SimTime) {
        *self.local.state.lock() = ViState::Error;
        ctx.metrics().counter("via.conn_broken").inc();
        ctx.trace(
            "via",
            "fault.break",
            &[
                ("vi", obs::Value::U64(self.local.id.0)),
                ("at_ns", obs::Value::U64(at.as_nanos())),
            ],
        );
        self.peer.incoming.send(
            ctx,
            Arrived {
                at,
                msg: WireMsg::Broken,
            },
            at,
        );
        self.notify_peer_recv_cq(ctx, at);
        self.complete_send(
            ctx,
            Completion {
                status: ViaStatus::ConnectionLost,
                len: 0,
                imm: None,
                queue: WhichQueue::Send,
                at,
                payload: None,
            },
        );
    }

    fn notify_peer_recv_cq(&self, ctx: &ActorCtx, at: SimTime) {
        if let Some(cq) = &self.peer.attrs.recv_cq {
            cq.notify(
                ctx,
                CqToken {
                    vi: self.peer.id,
                    queue: WhichQueue::Recv,
                },
                at,
            );
        }
    }

    /// Post a receive descriptor (`VipPostRecv`). Returns immediately.
    pub fn post_recv(&self, ctx: &ActorCtx, desc: RecvDesc) {
        let cost = self.nic.cost().post_recv
            + self
                .nic
                .cost()
                .per_segment
                .saturating_mul(desc.segs.len() as u64);
        self.nic.host().compute(ctx, cost);
        ctx.metrics().counter("via.descriptors.recv_posted").inc();
        ctx.trace(
            "via",
            "post.recv",
            &[
                ("vi", obs::Value::U64(self.local.id.0)),
                ("capacity", obs::Value::U64(desc.capacity())),
            ],
        );
        self.local.posted_recvs.lock().push_back(PostedRecv {
            desc,
            posted_at: ctx.now(),
        });
    }

    /// Number of receive descriptors currently posted.
    pub fn posted_recvs(&self) -> usize {
        self.local.posted_recvs.lock().len()
    }

    /// Post a send descriptor (`VipPostSend`): two-sided send, RDMA Write,
    /// or RDMA Read, per `desc.op`. Returns after the doorbell; the
    /// completion arrives asynchronously on the send queue / CQ.
    pub fn post_send(&self, ctx: &ActorCtx, desc: SendDesc) {
        let cost = self.nic.cost().post_send
            + self
                .nic
                .cost()
                .per_segment
                .saturating_mul(desc.segs.len() as u64);
        self.nic.host().compute(ctx, cost);
        // The doorbell write is the user-level I/O submission the paper's
        // VIA path is built around: count every ring.
        ctx.metrics().counter("via.doorbells").inc();
        ctx.trace(
            "via",
            "doorbell",
            &[
                ("vi", obs::Value::U64(self.local.id.0)),
                (
                    "op",
                    obs::Value::Str(match desc.op {
                        SendOp::Send => "send",
                        SendOp::RdmaWrite => "rdma_write",
                        SendOp::RdmaRead => "rdma_read",
                    }),
                ),
                ("len", obs::Value::U64(desc.total_len())),
            ],
        );

        if self.state() != ViState::Connected {
            return self.complete_send(
                ctx,
                Completion {
                    status: ViaStatus::ConnectionLost,
                    len: 0,
                    imm: None,
                    queue: WhichQueue::Send,
                    at: ctx.now(),
                    payload: None,
                },
            );
        }

        // Validate local segments against the TPT.
        for s in &desc.segs {
            if let Err(e) = self.nic.table().check(
                s.handle,
                self.local.ptag,
                s.addr,
                s.len as u64,
                AccessKind::Local,
            ) {
                return self.complete_send(
                    ctx,
                    Completion {
                        status: e.into(),
                        len: 0,
                        imm: None,
                        queue: WhichQueue::Send,
                        at: ctx.now(),
                        payload: None,
                    },
                );
            }
        }

        match desc.op {
            SendOp::Send => self.do_send(ctx, desc),
            SendOp::RdmaWrite => self.do_rdma_write(ctx, desc),
            SendOp::RdmaRead => self.do_rdma_read(ctx, desc),
        }
    }

    /// Compute (tx_done, delivery) for a message of `bytes` injected now:
    /// tx NIC processing, transmit-wire serialization, cut-through into the
    /// peer's receive wire, propagation, receive NIC processing.
    ///
    /// With a [`Topology`] configured, the frame traverses the switched
    /// fabric between the two NICs instead of a dedicated wire; `Err`
    /// carries the instant the fabric dropped it (queue overflow or every
    /// rail down), which breaks the reliable VI like any other wire loss.
    fn wire_times(&self, ctx: &ActorCtx, bytes: u64) -> Result<(SimTime, SimTime), SimTime> {
        let c = self.nic.cost();
        let ser = c.wire_bw.time_for(bytes);
        let (tx_start, tx_done) = self
            .nic
            .inner
            .tx_wire
            .book_span(ctx.now() + c.tx_nic_proc, ser);
        // Cut-through: the peer's receive port starts taking bits one
        // propagation delay (or one fabric traversal) after the first bit
        // leaves.
        let rx_first = match &self.topology {
            None => tx_start + c.wire_latency,
            Some(t) => t
                .deliver(
                    ctx,
                    self.faults.as_ref(),
                    self.nic.host().id,
                    self.peer_nic.host().id,
                    bytes,
                    tx_start,
                    tx_done,
                )
                .map_err(|d| d.at)?,
        };
        let rx_done = self.peer_nic.inner.rx_wire.book(rx_first, ser);
        Ok((tx_done, rx_done + c.rx_nic_proc))
    }

    /// Assemble the outgoing frame. With a zero-copy payload attached to
    /// the descriptor, this is a refcount bump — the segments were already
    /// TPT-checked and costed, and the bounce through registered staging
    /// memory is skipped. Otherwise gather once from host memory into a
    /// pooled frame buffer (the single copy of the send path).
    fn gather(&self, desc: &SendDesc) -> Bytes {
        if let Some(p) = &desc.payload {
            assert_eq!(
                p.len() as u64,
                desc.total_len(),
                "zero-copy payload length must match the descriptor segments"
            );
            return p.clone();
        }
        let mut frame = buf::frame_pool().alloc(desc.total_len() as usize);
        let mut off = 0usize;
        for s in &desc.segs {
            let n = s.len as usize;
            self.nic.host().mem.read(s.addr, &mut frame[off..off + n]);
            off += n;
        }
        frame.freeze()
    }

    fn do_send(&self, ctx: &ActorCtx, desc: SendDesc) {
        let len = desc.total_len();
        if len > self.local.attrs.max_transfer() {
            return self.complete_send(
                ctx,
                Completion {
                    status: ViaStatus::DescriptorError,
                    len: 0,
                    imm: None,
                    queue: WhichQueue::Send,
                    at: ctx.now(),
                    payload: None,
                },
            );
        }
        ctx.metrics().byte_meter("via.send.bytes").record(len);
        let bytes = self.gather(&desc);
        let (tx_done, delivery) = match self.wire_times(ctx, len) {
            Ok(v) => v,
            Err(at) => return self.fault_break(ctx, at),
        };
        let delivery = match self.faulted_delivery(ctx, delivery) {
            Ok(d) => d,
            Err(()) => return self.fault_break(ctx, delivery),
        };
        self.peer.incoming.send(
            ctx,
            Arrived {
                at: delivery,
                msg: WireMsg::Data {
                    bytes,
                    imm: desc.imm,
                },
            },
            delivery,
        );
        self.notify_peer_recv_cq(ctx, delivery);
        self.complete_send(
            ctx,
            Completion {
                status: ViaStatus::Success,
                len,
                imm: None,
                queue: WhichQueue::Send,
                at: tx_done,
                payload: None,
            },
        );
    }

    fn do_rdma_write(&self, ctx: &ActorCtx, desc: SendDesc) {
        let remote = match desc.remote {
            Some(r) => r,
            None => {
                return self.complete_send(
                    ctx,
                    Completion {
                        status: ViaStatus::DescriptorError,
                        len: 0,
                        imm: None,
                        queue: WhichQueue::Send,
                        at: ctx.now(),
                        payload: None,
                    },
                )
            }
        };
        let len = desc.total_len();
        // The remote NIC validates the target against its own TPT under the
        // *peer* endpoint's protection tag.
        if let Err(_e) = self.peer_nic.table().check(
            remote.handle,
            self.peer.ptag,
            remote.addr,
            len,
            AccessKind::RemoteWrite,
        ) {
            *self.local.state.lock() = ViState::Error;
            return self.complete_send(
                ctx,
                Completion {
                    status: ViaStatus::RemoteProtectionError,
                    len: 0,
                    imm: None,
                    queue: WhichQueue::Send,
                    at: ctx.now(),
                    payload: None,
                },
            );
        }
        // Move the bytes (the peer host CPU is *not* involved).
        ctx.metrics().byte_meter("via.rdma.bytes").record(len);
        let bytes = self.gather(&desc);
        let (tx_done, delivery) = match self.wire_times(ctx, len) {
            Ok(v) => v,
            Err(at) => return self.fault_break(ctx, at),
        };
        // A lost RDMA write must not place any remote bytes.
        let delivery = match self.faulted_delivery(ctx, delivery) {
            Ok(d) => d,
            Err(()) => return self.fault_break(ctx, delivery),
        };
        self.peer_nic.host().mem.write(remote.addr, &bytes);
        if let Some(imm) = desc.imm {
            self.peer.incoming.send(
                ctx,
                Arrived {
                    at: delivery,
                    msg: WireMsg::RdmaWriteImm { imm, len },
                },
                delivery,
            );
            self.notify_peer_recv_cq(ctx, delivery);
        }
        self.complete_send(
            ctx,
            Completion {
                status: ViaStatus::Success,
                len,
                imm: None,
                queue: WhichQueue::Send,
                at: tx_done,
                payload: None,
            },
        );
    }

    fn do_rdma_read(&self, ctx: &ActorCtx, desc: SendDesc) {
        if !self.nic.cost().rdma_read_supported {
            return self.complete_send(
                ctx,
                Completion {
                    status: ViaStatus::NotSupported,
                    len: 0,
                    imm: None,
                    queue: WhichQueue::Send,
                    at: ctx.now(),
                    payload: None,
                },
            );
        }
        let remote = match desc.remote {
            Some(r) => r,
            None => {
                return self.complete_send(
                    ctx,
                    Completion {
                        status: ViaStatus::DescriptorError,
                        len: 0,
                        imm: None,
                        queue: WhichQueue::Send,
                        at: ctx.now(),
                        payload: None,
                    },
                )
            }
        };
        let len = desc.total_len();
        if let Err(_e) = self.peer_nic.table().check(
            remote.handle,
            self.peer.ptag,
            remote.addr,
            len,
            AccessKind::RemoteRead,
        ) {
            *self.local.state.lock() = ViState::Error;
            return self.complete_send(
                ctx,
                Completion {
                    status: ViaStatus::RemoteProtectionError,
                    len: 0,
                    imm: None,
                    queue: WhichQueue::Send,
                    at: ctx.now(),
                    payload: None,
                },
            );
        }
        ctx.metrics().byte_meter("via.rdma.bytes").record(len);
        let c = self.nic.cost();
        // Request (small control message) to the peer NIC...
        let req_at = ctx.now() + c.tx_nic_proc + c.wire_latency;
        // ...peer NIC streams the payload back, occupying its transmit wire
        // and our receive wire.
        let ser = c.wire_bw.time_for(len);
        let (peer_tx_start, peer_tx_done) = self.peer_nic.inner.tx_wire.book_span(req_at, ser);
        // The returning payload stream crosses the fabric peer -> local
        // when a topology is configured (the tiny request stays on the
        // control path, like connection management).
        let rx_first = match &self.topology {
            None => peer_tx_start + c.wire_latency,
            Some(t) => match t.deliver(
                ctx,
                self.faults.as_ref(),
                self.peer_nic.host().id,
                self.nic.host().id,
                len,
                peer_tx_start,
                peer_tx_done,
            ) {
                Ok(at) => at,
                Err(d) => return self.fault_break(ctx, d.at),
            },
        };
        let rx_done = self.nic.inner.rx_wire.book(rx_first, ser);
        let mut delivery = rx_done + c.rx_nic_proc;
        // The returning data stream is the judged delivery (peer -> local).
        if let Some(f) = &self.faults {
            let (src, dst) = (self.peer_nic.host().id, self.nic.host().id);
            if f.should_drop(ctx, src, dst, delivery).is_some() {
                return self.fault_break(ctx, delivery);
            }
            delivery = f.jitter(ctx, src, dst, delivery);
        }
        // Scatter remote bytes into the local segments.
        let bytes = self
            .peer_nic
            .host()
            .mem
            .read_bytes(remote.addr, len as usize);
        let mut off = 0usize;
        for s in &desc.segs {
            self.nic
                .host()
                .mem
                .write(s.addr, &bytes[off..off + s.len as usize]);
            off += s.len as usize;
        }
        self.complete_send(
            ctx,
            Completion {
                status: ViaStatus::Success,
                len,
                imm: None,
                queue: WhichQueue::Send,
                at: delivery,
                payload: None,
            },
        );
    }

    /// Non-blocking send-completion poll (`VipSendDone`).
    pub fn send_done(&self, ctx: &ActorCtx) -> Option<Completion> {
        self.nic.host().compute(ctx, self.nic.cost().poll);
        self.local.send_completions.try_recv(ctx)
    }

    /// Blocking send-completion wait (`VipSendWait`).
    pub fn send_wait(&self, ctx: &ActorCtx) -> Completion {
        self.nic.host().compute(ctx, self.nic.cost().poll);
        self.local
            .send_completions
            .recv(ctx)
            .expect("send completion port never closes")
    }

    /// Non-blocking receive poll (`VipRecvDone`): processes the next arrived
    /// message, if any.
    pub fn recv_done(&self, ctx: &ActorCtx) -> Option<Completion> {
        self.nic.host().compute(ctx, self.nic.cost().poll);
        let arrived = self.local.incoming.try_recv(ctx)?;
        Some(self.deliver(ctx, arrived))
    }

    /// Blocking receive wait (`VipRecvWait`).
    pub fn recv_wait(&self, ctx: &ActorCtx) -> Completion {
        self.nic.host().compute(ctx, self.nic.cost().poll);
        match self.local.incoming.recv(ctx) {
            Some(arrived) => self.deliver(ctx, arrived),
            None => Completion {
                status: ViaStatus::ConnectionLost,
                len: 0,
                imm: None,
                queue: WhichQueue::Recv,
                at: ctx.now(),
                payload: None,
            },
        }
    }

    /// Consume one arrived wire message against the posted receive queue.
    fn deliver(&self, ctx: &ActorCtx, arrived: Arrived) -> Completion {
        let at = arrived.at;
        match arrived.msg {
            WireMsg::Disconnect => {
                *self.local.state.lock() = ViState::Disconnected;
                Completion {
                    status: ViaStatus::ConnectionLost,
                    len: 0,
                    imm: None,
                    queue: WhichQueue::Recv,
                    at,
                    payload: None,
                }
            }
            WireMsg::Broken => {
                *self.local.state.lock() = ViState::Error;
                Completion {
                    status: ViaStatus::ConnectionLost,
                    len: 0,
                    imm: None,
                    queue: WhichQueue::Recv,
                    at,
                    payload: None,
                }
            }
            WireMsg::RdmaWriteImm { imm, len } => match self.take_posted(at) {
                Some(_) => Completion {
                    status: ViaStatus::Success,
                    len,
                    imm: Some(imm),
                    queue: WhichQueue::Recv,
                    at,
                    payload: None,
                },
                None => self.missing_descriptor(ctx, at),
            },
            WireMsg::Data { bytes, imm } => match self.take_posted(at) {
                None => self.missing_descriptor(ctx, at),
                Some(desc) => {
                    if (bytes.len() as u64) > desc.capacity() {
                        return Completion {
                            status: ViaStatus::LengthError,
                            len: 0,
                            imm,
                            queue: WhichQueue::Recv,
                            at,
                            payload: None,
                        };
                    }
                    // Scatter: NIC data placement, no host CPU charge.
                    let mut off = 0usize;
                    for s in &desc.segs {
                        if off >= bytes.len() {
                            break;
                        }
                        let n = (s.len as usize).min(bytes.len() - off);
                        self.nic.host().mem.write(s.addr, &bytes[off..off + n]);
                        off += n;
                    }
                    let len = bytes.len() as u64;
                    Completion {
                        status: ViaStatus::Success,
                        len,
                        imm,
                        queue: WhichQueue::Recv,
                        at,
                        // Hand the receiver a view of the same frame the NIC
                        // just placed, so it can parse without re-reading
                        // (and re-copying) the posted buffer.
                        payload: Some(bytes),
                    }
                }
            },
        }
    }

    /// Pop the head receive descriptor if it was posted before `arrival`.
    fn take_posted(&self, arrival: SimTime) -> Option<RecvDesc> {
        let mut q = self.local.posted_recvs.lock();
        match q.front() {
            Some(p) if p.posted_at <= arrival => Some(q.pop_front().unwrap().desc),
            _ => None,
        }
    }

    fn missing_descriptor(&self, _ctx: &ActorCtx, at: SimTime) -> Completion {
        match self.local.attrs.reliability {
            Reliability::Unreliable => Completion {
                // Dropped silently on the wire; surfaced to the caller as a
                // descriptor error so tests can observe the drop.
                status: ViaStatus::DescriptorError,
                len: 0,
                imm: None,
                queue: WhichQueue::Recv,
                at,
                payload: None,
            },
            Reliability::Reliable => {
                *self.local.state.lock() = ViState::Error;
                Completion {
                    status: ViaStatus::ConnectionLost,
                    len: 0,
                    imm: None,
                    queue: WhichQueue::Recv,
                    at,
                    payload: None,
                }
            }
        }
    }

    /// Cleanly disconnect (`VipDisconnect`). The peer observes a
    /// `ConnectionLost` receive completion.
    pub fn disconnect(&self, ctx: &ActorCtx) {
        let c = self.nic.cost();
        {
            // Disconnecting an already broken or disconnected VI is a no-op
            // (the peer was notified when the connection died).
            let mut st = self.local.state.lock();
            if *st != ViState::Connected {
                return;
            }
            *st = ViState::Disconnected;
        }
        let at = ctx.now() + c.tx_nic_proc + c.wire_latency + c.rx_nic_proc;
        // A disconnect notification rides the same faulty wire as data.
        if let Some(f) = &self.faults {
            let (src, dst) = (self.nic.host().id, self.peer_nic.host().id);
            if f.should_drop(ctx, src, dst, at).is_some() {
                return;
            }
        }
        self.peer.incoming.send(
            ctx,
            Arrived {
                at,
                msg: WireMsg::Disconnect,
            },
            at,
        );
        self.notify_peer_recv_cq(ctx, at);
    }
}
