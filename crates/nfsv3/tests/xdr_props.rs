//! Property tests for the XDR codec: arbitrary sequences of fields must
//! round-trip, with every opaque padded to 4-byte alignment.
//!
//! Field sequences come from the in-tree deterministic PRNG
//! ([`simnet::Rng64`]); every run checks the same 256 cases.

use nfsv3::xdr::{XdrDec, XdrEnc};
use simnet::Rng64;

#[derive(Debug, Clone)]
enum Field {
    U32(u32),
    U64(u64),
    Opaque(Vec<u8>),
    Str(String),
}

const STR_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._/-";

fn gen_field(rng: &mut Rng64) -> Field {
    match rng.below(4) {
        0 => Field::U32(rng.next_u64() as u32),
        1 => Field::U64(rng.next_u64()),
        2 => {
            let len = rng.range_usize(0, 64);
            Field::Opaque(rng.bytes(len))
        }
        _ => {
            let len = rng.range_usize(0, 25);
            Field::Str(
                (0..len)
                    .map(|_| STR_CHARS[rng.range_usize(0, STR_CHARS.len())] as char)
                    .collect(),
            )
        }
    }
}

#[test]
fn sequences_roundtrip() {
    let mut rng = Rng64::new(0x0DD5_0001);
    for case in 0..256 {
        let fields: Vec<Field> = (0..rng.range_usize(0, 16))
            .map(|_| gen_field(&mut rng))
            .collect();
        let mut e = XdrEnc::new();
        for f in &fields {
            match f {
                Field::U32(v) => {
                    e.u32(*v);
                }
                Field::U64(v) => {
                    e.u64(*v);
                }
                Field::Opaque(v) => {
                    e.opaque(v);
                }
                Field::Str(s) => {
                    e.string(s);
                }
            }
        }
        let bytes = e.finish();
        assert_eq!(bytes.len() % 4, 0, "XDR stream must stay 4-aligned");
        let mut d = XdrDec::new(&bytes);
        for f in &fields {
            match f {
                Field::U32(v) => assert_eq!(d.u32().unwrap(), *v, "case {case}"),
                Field::U64(v) => assert_eq!(d.u64().unwrap(), *v, "case {case}"),
                Field::Opaque(v) => assert_eq!(&d.opaque().unwrap(), v, "case {case}"),
                Field::Str(s) => assert_eq!(&d.string().unwrap(), s, "case {case}"),
            }
        }
        assert_eq!(d.remaining(), 0);
    }
}

/// Decoding random garbage never panics — it either yields values or
/// errors.
#[test]
fn decoder_is_total() {
    let mut rng = Rng64::new(0x0DD5_0002);
    for _ in 0..256 {
        let len = rng.range_usize(0, 64);
        let bytes = rng.bytes(len);
        let mut d = XdrDec::new(&bytes);
        let _ = d.u32();
        let _ = d.opaque();
        let _ = d.string();
        let _ = d.u64();
    }
}
