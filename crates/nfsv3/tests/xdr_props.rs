//! Property tests for the XDR codec: arbitrary sequences of fields must
//! round-trip, with every opaque padded to 4-byte alignment.

use nfsv3::xdr::{XdrDec, XdrEnc};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Field {
    U32(u32),
    U64(u64),
    Opaque(Vec<u8>),
    Str(String),
}

fn arb_field() -> impl Strategy<Value = Field> {
    prop_oneof![
        any::<u32>().prop_map(Field::U32),
        any::<u64>().prop_map(Field::U64),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Field::Opaque),
        "[a-zA-Z0-9._/-]{0,24}".prop_map(Field::Str),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sequences_roundtrip(fields in proptest::collection::vec(arb_field(), 0..16)) {
        let mut e = XdrEnc::new();
        for f in &fields {
            match f {
                Field::U32(v) => { e.u32(*v); }
                Field::U64(v) => { e.u64(*v); }
                Field::Opaque(v) => { e.opaque(v); }
                Field::Str(s) => { e.string(s); }
            }
        }
        let bytes = e.finish();
        prop_assert_eq!(bytes.len() % 4, 0, "XDR stream must stay 4-aligned");
        let mut d = XdrDec::new(&bytes);
        for f in &fields {
            match f {
                Field::U32(v) => prop_assert_eq!(d.u32().unwrap(), *v),
                Field::U64(v) => prop_assert_eq!(d.u64().unwrap(), *v),
                Field::Opaque(v) => prop_assert_eq!(&d.opaque().unwrap(), v),
                Field::Str(s) => prop_assert_eq!(&d.string().unwrap(), s),
            }
        }
        prop_assert_eq!(d.remaining(), 0);
    }

    /// Decoding random garbage never panics — it either yields values or
    /// errors.
    #[test]
    fn decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut d = XdrDec::new(&bytes);
        let _ = d.u32();
        let _ = d.opaque();
        let _ = d.string();
        let _ = d.u64();
    }
}
