//! # nfsv3 — the baseline file-access path
//!
//! An NFSv3-subset client and server over the kernel TCP path (`tcpnet`),
//! exporting the same [`memfs`] backend the DAFS server exports. This is
//! the conventional stack the paper's evaluation compares MPI-IO-over-DAFS
//! against: ONC-RPC-style framing, XDR encoding, 32 KiB rsize/wsize
//! transfer chunking, an attribute cache on the client, and a single serial
//! `nfsd` on the server.
//!
//! Wire format is a faithful-in-shape subset of RFC 1813: real procedure
//! numbers and status codes, `fattr3`-like attributes, record marking —
//! enough that the byte counts (and therefore the packet counts and copy
//! costs that dominate the baseline's performance) are honest.

#![warn(missing_docs)]

mod client;
mod proto;
mod server;
pub mod xdr;

pub use client::{
    NfsClient, NfsClientConfig, NfsClientStats, NfsError, NfsPendingRead, NfsPendingWrite,
    NfsResult, RetryPolicy, SharedNfsClient,
};
pub use proto::{NfsProc, NfsStatus, Stable};
pub use server::{spawn_nfs_server, NfsServerCost, NfsServerHandle, NfsServerStats};

#[cfg(test)]
mod tests {
    use super::*;
    use memfs::{MemFs, NodeId, ROOT_ID};
    use simnet::time::units::*;
    use simnet::{Cluster, Host, SimKernel};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use tcpnet::{TcpCost, TcpFabric};

    struct Bed {
        kernel: SimKernel,
        fabric: TcpFabric,
        client_host: Host,
        server: NfsServerHandle,
        fs: MemFs,
    }

    fn bed() -> Bed {
        let kernel = SimKernel::new();
        let cluster = Cluster::new();
        let fabric = TcpFabric::new(TcpCost::default());
        let client_host = cluster.add_host("client");
        let server_host = cluster.add_host("server");
        let fs = MemFs::new();
        let server = spawn_nfs_server(
            &kernel,
            &fabric,
            server_host,
            fs.clone(),
            2049,
            NfsServerCost::default(),
        );
        Bed {
            kernel,
            fabric,
            client_host,
            server,
            fs,
        }
    }

    fn with_client(bed: &Bed, f: impl FnOnce(&simnet::ActorCtx, &NfsClient) + Send + 'static) {
        let fabric = bed.fabric.clone();
        let host = bed.client_host.clone();
        let sid = bed.server.host.id;
        bed.kernel.spawn("nfs-client", move |ctx| {
            let c = NfsClient::mount(ctx, &fabric, &host, sid, 2049, NfsClientConfig::default())
                .unwrap();
            f(ctx, &c);
            c.unmount(ctx);
        });
    }

    #[test]
    fn create_write_read_roundtrip_over_the_wire() {
        let b = bed();
        with_client(&b, |ctx, c| {
            let f = c.create(ctx, ROOT_ID, "data.bin").unwrap();
            let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
            let a = c.write(ctx, f.id, 0, &payload).unwrap();
            assert_eq!(a.size, 100_000);
            let back = c.read(ctx, f.id, 0, 100_000).unwrap();
            assert_eq!(back, payload);
            // Offset read.
            assert_eq!(c.read(ctx, f.id, 99_990, 100).unwrap().len(), 10);
        });
        b.kernel.run();
        // Server really stored it.
        let a = b.fs.resolve("/data.bin").unwrap();
        assert_eq!(a.size, 100_000);
        // Chunked by wsize: 100_000 / 32768 -> 4 write RPCs.
        assert_eq!(b.server.stats.writes.ops.get(), 4);
    }

    #[test]
    fn lookup_and_errors_cross_the_wire() {
        let b = bed();
        b.fs.create(ROOT_ID, "exists").unwrap();
        with_client(&b, |ctx, c| {
            assert!(c.lookup(ctx, ROOT_ID, "exists").is_ok());
            assert_eq!(
                c.lookup(ctx, ROOT_ID, "missing"),
                Err(NfsError::Status(NfsStatus::NoEnt))
            );
            assert_eq!(
                c.create(ctx, ROOT_ID, "exists").unwrap_err(),
                NfsError::Status(NfsStatus::Exist)
            );
            assert_eq!(
                c.getattr_uncached(ctx, NodeId(9999)).unwrap_err(),
                NfsError::Status(NfsStatus::Stale)
            );
        });
        b.kernel.run();
    }

    #[test]
    fn namespace_ops() {
        let b = bed();
        with_client(&b, |ctx, c| {
            let d = c.mkdir(ctx, ROOT_ID, "dir").unwrap();
            c.create(ctx, d.id, "f1").unwrap();
            c.create(ctx, d.id, "f2").unwrap();
            let mut names: Vec<String> = c
                .readdir(ctx, d.id)
                .unwrap()
                .into_iter()
                .map(|e| e.0)
                .collect();
            names.sort();
            assert_eq!(names, vec!["f1", "f2"]);
            assert_eq!(
                c.rmdir(ctx, ROOT_ID, "dir").unwrap_err(),
                NfsError::Status(NfsStatus::NotEmpty)
            );
            c.rename(ctx, d.id, "f1", ROOT_ID, "f1-moved").unwrap();
            c.remove(ctx, d.id, "f2").unwrap();
            c.remove(ctx, ROOT_ID, "f1-moved").unwrap();
            c.rmdir(ctx, ROOT_ID, "dir").unwrap();
            assert_eq!(c.readdir(ctx, ROOT_ID).unwrap().len(), 0);
        });
        b.kernel.run();
    }

    #[test]
    fn truncate_and_resolve() {
        let b = bed();
        with_client(&b, |ctx, c| {
            let d = c.mkdir(ctx, ROOT_ID, "a").unwrap();
            let f = c.create(ctx, d.id, "b").unwrap();
            c.write(ctx, f.id, 0, b"0123456789").unwrap();
            let a = c.truncate(ctx, f.id, 4).unwrap();
            assert_eq!(a.size, 4);
            assert_eq!(c.resolve(ctx, "/a/b").unwrap().size, 4);
            assert_eq!(c.read(ctx, f.id, 0, 100).unwrap(), b"0123");
        });
        b.kernel.run();
    }

    #[test]
    fn attribute_cache_hits_within_timeout() {
        let b = bed();
        with_client(&b, |ctx, c| {
            let f = c.create(ctx, ROOT_ID, "f").unwrap();
            let rpcs_before = c.stats.rpcs.get();
            // Repeated getattr within the window: cache hits, no RPCs.
            for _ in 0..5 {
                c.getattr(ctx, f.id).unwrap();
            }
            assert_eq!(c.stats.rpcs.get(), rpcs_before);
            assert_eq!(c.stats.ac_hits.get(), 5);
            // After the timeout, it must refetch.
            ctx.advance(ms(50));
            c.getattr(ctx, f.id).unwrap();
            assert_eq!(c.stats.rpcs.get(), rpcs_before + 1);
        });
        b.kernel.run();
    }

    #[test]
    fn data_cache_serves_rereads_locally() {
        let kernel = SimKernel::new();
        let cluster = Cluster::new();
        let fabric = TcpFabric::new(TcpCost::default());
        let ch = cluster.add_host("c");
        let sh = cluster.add_host("s");
        let fs = MemFs::new();
        let f = fs.create(ROOT_ID, "cached").unwrap();
        fs.write(f.id, 0, &vec![9u8; 64 << 10]).unwrap();
        let server = spawn_nfs_server(&kernel, &fabric, sh, fs, 2049, NfsServerCost::default());
        let sid = server.host.id;
        let f2 = fabric.clone();
        kernel.spawn("client", move |ctx| {
            let cfg = NfsClientConfig {
                data_cache: true,
                ..Default::default()
            };
            let c = NfsClient::mount(ctx, &f2, &ch, sid, 2049, cfg).unwrap();
            let fh = c.lookup(ctx, ROOT_ID, "cached").unwrap();
            let first = c.read(ctx, fh.id, 0, 64 << 10).unwrap();
            assert_eq!(first, vec![9u8; 64 << 10]);
            let rpcs_after_first = c.stats.rpcs.get();
            // Re-read: all pages hit; only time passes, no READ RPCs.
            let again = c.read(ctx, fh.id, 1000, 10_000).unwrap();
            assert_eq!(again, vec![9u8; 10_000]);
            assert_eq!(
                c.stats.rpcs.get(),
                rpcs_after_first,
                "re-read must be RPC-free"
            );
            assert!(c.stats.dc_hits.get() > 0);
            // Our own write invalidates covered pages but keeps the rest.
            c.write(ctx, fh.id, 0, &[1u8; 100]).unwrap();
            let head = c.read(ctx, fh.id, 0, 100).unwrap();
            assert_eq!(head, vec![1u8; 100]);
            let tail = c.read(ctx, fh.id, 32 << 10, 100).unwrap();
            assert_eq!(tail, vec![9u8; 100]);
            c.unmount(ctx);
        });
        kernel.run();
    }

    #[test]
    fn data_cache_is_weakly_consistent_across_clients() {
        // Client A caches a page; client B overwrites it on the server.
        // Within A's attribute-cache window, A still sees the OLD data —
        // the 2001 semantics that made plain NFS unsafe under MPI-IO.
        let kernel = SimKernel::new();
        let cluster = Cluster::new();
        let fabric = TcpFabric::new(TcpCost::default());
        let ha = cluster.add_host("a");
        let hb = cluster.add_host("b");
        let sh = cluster.add_host("s");
        let fs = MemFs::new();
        let f = fs.create(ROOT_ID, "sharedfile").unwrap();
        fs.write(f.id, 0, &vec![0xAA; 4096]).unwrap();
        let server = spawn_nfs_server(&kernel, &fabric, sh, fs, 2049, NfsServerCost::default());
        let sid = server.host.id;
        {
            let fabric = fabric.clone();
            kernel.spawn("reader", move |ctx| {
                let cfg = NfsClientConfig {
                    data_cache: true,
                    ..Default::default()
                };
                let c = NfsClient::mount(ctx, &fabric, &ha, sid, 2049, cfg).unwrap();
                let fh = c.lookup(ctx, ROOT_ID, "sharedfile").unwrap();
                assert_eq!(c.read(ctx, fh.id, 0, 16).unwrap(), vec![0xAA; 16]);
                // Give B time to overwrite on the server.
                ctx.advance(ms(5));
                // Still within the 30ms attribute window: stale view.
                assert_eq!(
                    c.read(ctx, fh.id, 0, 16).unwrap(),
                    vec![0xAA; 16],
                    "weakly consistent read must serve the stale cache"
                );
                // After the attribute cache expires, revalidation sees the
                // new version and refetches.
                ctx.advance(ms(40));
                assert_eq!(c.read(ctx, fh.id, 0, 16).unwrap(), vec![0xBB; 16]);
                c.unmount(ctx);
            });
        }
        kernel.spawn("writer", move |ctx| {
            ctx.advance(ms(2));
            let c =
                NfsClient::mount(ctx, &fabric, &hb, sid, 2049, NfsClientConfig::default()).unwrap();
            let fh = c.lookup(ctx, ROOT_ID, "sharedfile").unwrap();
            c.write(ctx, fh.id, 0, &vec![0xBB; 4096]).unwrap();
            c.unmount(ctx);
        });
        kernel.run();
    }

    #[test]
    fn revalidate_attr_sees_external_write_inside_ttl() {
        // Regression: a client that cached a file's attributes keeps
        // serving them for the full TTL even after another client wrote
        // the file. `revalidate_attr` is the explicit consistency point —
        // one GETATTR round trip, stale pages dropped on a version change —
        // so callers need not wait out the window.
        let kernel = SimKernel::new();
        let cluster = Cluster::new();
        let fabric = TcpFabric::new(TcpCost::default());
        let ha = cluster.add_host("a");
        let hb = cluster.add_host("b");
        let sh = cluster.add_host("s");
        let fs = MemFs::new();
        let f = fs.create(ROOT_ID, "reval").unwrap();
        fs.write(f.id, 0, &vec![0xAA; 4096]).unwrap();
        let server = spawn_nfs_server(&kernel, &fabric, sh, fs, 2049, NfsServerCost::default());
        let sid = server.host.id;
        {
            let fabric = fabric.clone();
            kernel.spawn("reader", move |ctx| {
                let cfg = NfsClientConfig {
                    data_cache: true,
                    ..Default::default()
                };
                let c = NfsClient::mount(ctx, &fabric, &ha, sid, 2049, cfg).unwrap();
                let fh = c.lookup(ctx, ROOT_ID, "reval").unwrap();
                let before = c.getattr(ctx, fh.id).unwrap();
                assert_eq!(before.size, 4096);
                assert_eq!(c.read(ctx, fh.id, 0, 16).unwrap(), vec![0xAA; 16]);
                // B extends and overwrites on the server at 2 ms.
                ctx.advance(ms(5));
                // Still inside the 30 ms window: the plain path is stale.
                assert_eq!(c.getattr(ctx, fh.id).unwrap().size, 4096);
                // The revalidation interface sees the write immediately.
                let after = c.revalidate_attr(ctx, fh.id).unwrap();
                assert_eq!(after.size, 8192, "revalidation must see the new size");
                assert!(after.version > before.version, "change token must advance");
                // It also re-primed the attr cache with the fresh attr...
                assert_eq!(c.getattr(ctx, fh.id).unwrap().size, 8192);
                // ...and dropped the stale pages: the re-read refetches.
                assert_eq!(c.read(ctx, fh.id, 0, 16).unwrap(), vec![0xBB; 16]);
                c.unmount(ctx);
            });
        }
        kernel.spawn("writer", move |ctx| {
            ctx.advance(ms(2));
            let c =
                NfsClient::mount(ctx, &fabric, &hb, sid, 2049, NfsClientConfig::default()).unwrap();
            let fh = c.lookup(ctx, ROOT_ID, "reval").unwrap();
            c.write(ctx, fh.id, 0, &vec![0xBB; 8192]).unwrap();
            c.unmount(ctx);
        });
        kernel.run();
    }

    #[test]
    fn own_write_after_external_write_does_not_bless_stale_pages() {
        // Regression: the write path used to re-tag every surviving cached
        // page with the post-write version. If another client had written
        // in between, that blessed stale pages with a fresh tag — served
        // stale forever, even past the attribute TTL. The fix compares the
        // version change token: a jump of more than our own write drops the
        // file's pages instead.
        let kernel = SimKernel::new();
        let cluster = Cluster::new();
        let fabric = TcpFabric::new(TcpCost::default());
        let ha = cluster.add_host("a");
        let hb = cluster.add_host("b");
        let sh = cluster.add_host("s");
        let fs = MemFs::new();
        let f = fs.create(ROOT_ID, "blessed").unwrap();
        fs.write(f.id, 0, &vec![0xAA; 8192]).unwrap();
        let server = spawn_nfs_server(&kernel, &fabric, sh, fs, 2049, NfsServerCost::default());
        let sid = server.host.id;
        {
            let fabric = fabric.clone();
            kernel.spawn("reader-writer", move |ctx| {
                let cfg = NfsClientConfig {
                    data_cache: true,
                    ..Default::default()
                };
                let c = NfsClient::mount(ctx, &fabric, &ha, sid, 2049, cfg).unwrap();
                let fh = c.lookup(ctx, ROOT_ID, "blessed").unwrap();
                // Cache page 0.
                assert_eq!(c.read(ctx, fh.id, 0, 16).unwrap(), vec![0xAA; 16]);
                // B overwrites page 0 on the server at 2 ms.
                ctx.advance(ms(5));
                // Our own write to page 1 must notice the version jump and
                // drop the stale page 0 rather than re-tag it.
                c.write(ctx, fh.id, 4096, &[0xCC; 16]).unwrap();
                // Well past the attribute TTL, so only a wrongly-blessed
                // page tag could still serve 0xAA here.
                ctx.advance(ms(50));
                assert_eq!(
                    c.read(ctx, fh.id, 0, 16).unwrap(),
                    vec![0xBB; 16],
                    "stale page must not survive an external write"
                );
                c.unmount(ctx);
            });
        }
        kernel.spawn("writer", move |ctx| {
            ctx.advance(ms(2));
            let c =
                NfsClient::mount(ctx, &fabric, &hb, sid, 2049, NfsClientConfig::default()).unwrap();
            let fh = c.lookup(ctx, ROOT_ID, "blessed").unwrap();
            c.write(ctx, fh.id, 0, &vec![0xBB; 4096]).unwrap();
            c.unmount(ctx);
        });
        kernel.run();
    }

    #[test]
    fn cached_read_matches_uncached_across_concurrent_extension() {
        // Two readers of the same file — one page-cached, one not — plus a
        // writer that extends the file after both have (attribute-)cached
        // its old 4 KiB size. A read spanning the extension must return
        // the same bytes on both paths: the cached path may serve its old
        // pages from memory, but for the region it has to fetch it trusts
        // the server's per-RPC EOF, not the stale cached size.
        use std::sync::Mutex;
        let kernel = SimKernel::new();
        let cluster = Cluster::new();
        let fabric = TcpFabric::new(TcpCost::default());
        let sh = cluster.add_host("s");
        let hosts: Vec<_> = ["cached", "uncached"]
            .iter()
            .map(|n| cluster.add_host(n))
            .collect();
        let hw = cluster.add_host("writer");
        let fs = MemFs::new();
        let f = fs.create(ROOT_ID, "grow").unwrap();
        fs.write(f.id, 0, &vec![0x11; 4096]).unwrap();
        let server = spawn_nfs_server(&kernel, &fabric, sh, fs, 2049, NfsServerCost::default());
        let sid = server.host.id;
        let results: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
        for (host, data_cache) in hosts.into_iter().zip([true, false]) {
            let fabric = fabric.clone();
            let results = results.clone();
            kernel.spawn(&format!("reader-{data_cache}"), move |ctx| {
                let cfg = NfsClientConfig {
                    data_cache,
                    ..Default::default()
                };
                let c = NfsClient::mount(ctx, &fabric, &host, sid, 2049, cfg).unwrap();
                let fh = c.lookup(ctx, ROOT_ID, "grow").unwrap();
                // Prime the attribute (and page) caches at the old size.
                assert_eq!(c.read(ctx, fh.id, 0, 4096).unwrap().len(), 4096);
                // Let the writer extend the file on the server; stay well
                // inside the 30 ms attribute-cache window.
                ctx.advance(ms(5));
                let got = c.read(ctx, fh.id, 0, 8192).unwrap();
                results.lock().unwrap().push(got);
                c.unmount(ctx);
            });
        }
        {
            let fabric = fabric.clone();
            kernel.spawn("writer", move |ctx| {
                ctx.advance(ms(2));
                let c = NfsClient::mount(ctx, &fabric, &hw, sid, 2049, NfsClientConfig::default())
                    .unwrap();
                let fh = c.lookup(ctx, ROOT_ID, "grow").unwrap();
                c.write(ctx, fh.id, 4096, &vec![0x22; 4096]).unwrap();
                c.unmount(ctx);
            });
        }
        kernel.run();
        let results = results.lock().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].len(),
            results[1].len(),
            "cached and uncached reads must agree on length across a concurrent extension"
        );
        assert_eq!(results[0], results[1]);
        assert_eq!(
            results[0].len(),
            8192,
            "the extension is past the stale cached size"
        );
    }

    #[test]
    fn unstable_write_plus_commit_cheaper_than_sync() {
        // Compare server CPU for FILE_SYNC vs UNSTABLE+COMMIT.
        fn run(stable: Stable) -> u64 {
            let kernel = SimKernel::new();
            let cluster = Cluster::new();
            let fabric = TcpFabric::new(TcpCost::default());
            let ch = cluster.add_host("c");
            let sh = cluster.add_host("s");
            let fs = MemFs::new();
            let server = spawn_nfs_server(&kernel, &fabric, sh, fs, 2049, NfsServerCost::default());
            let f2 = fabric.clone();
            let server_host = server.host.clone();
            kernel.spawn("client", move |ctx| {
                let cfg = NfsClientConfig {
                    stable,
                    ..Default::default()
                };
                let c = NfsClient::mount(ctx, &f2, &ch, server_host.id, 2049, cfg).unwrap();
                let f = c.create(ctx, ROOT_ID, "f").unwrap();
                let data = vec![1u8; 256 << 10];
                c.write(ctx, f.id, 0, &data).unwrap();
                if stable == Stable::Unstable {
                    c.commit(ctx, f.id).unwrap();
                }
                c.unmount(ctx);
            });
            kernel.run();
            server.host.cpu.busy().as_nanos()
        }
        let sync = run(Stable::FileSync);
        let unstable = run(Stable::Unstable);
        // 8 chunks: FILE_SYNC pays 8 syncs, UNSTABLE+COMMIT pays 1.
        assert!(
            unstable < sync,
            "unstable+commit ({unstable}) should cost less than file_sync ({sync})"
        );
    }

    #[test]
    fn small_op_latency_envelope() {
        let b = bed();
        let lat = Arc::new(AtomicU64::new(0));
        let l2 = lat.clone();
        with_client(&b, move |ctx, c| {
            c.null(ctx).unwrap(); // warm the connection
            let t0 = ctx.now();
            const N: u64 = 20;
            for _ in 0..N {
                c.getattr_uncached(ctx, ROOT_ID).unwrap();
            }
            l2.store(ctx.now().since(t0).as_nanos() / N, Ordering::Relaxed);
        });
        b.kernel.run();
        let us_ = lat.load(Ordering::Relaxed) as f64 / 1000.0;
        // Kernel-stack RPC: expect ~150-250 us per getattr.
        assert!((120.0..300.0).contains(&us_), "NFS getattr = {us_}us");
    }

    #[test]
    fn sequential_read_bandwidth_envelope() {
        let b = bed();
        const MB: usize = 8 << 20;
        b.fs.create(ROOT_ID, "big").unwrap();
        let f = b.fs.resolve("/big").unwrap();
        b.fs.write(f.id, 0, &vec![7u8; MB]).unwrap();
        let dur = Arc::new(AtomicU64::new(0));
        let d2 = dur.clone();
        with_client(&b, move |ctx, c| {
            let f = c.lookup(ctx, ROOT_ID, "big").unwrap();
            let t0 = ctx.now();
            let data = c.read(ctx, f.id, 0, MB as u64).unwrap();
            assert_eq!(data.len(), MB);
            d2.store(ctx.now().since(t0).as_nanos(), Ordering::Relaxed);
        });
        b.kernel.run();
        let mb_s = MB as f64 / (dur.load(Ordering::Relaxed) as f64 / 1e9) / 1e6;
        // Synchronous 32 KiB READ RPCs through the kernel stack: the era's
        // NFS lands in the tens of MB/s.
        assert!((10.0..60.0).contains(&mb_s), "NFS read = {mb_s} MB/s");
    }

    #[test]
    fn concurrent_clients_share_one_nfsd() {
        let kernel = SimKernel::new();
        let cluster = Cluster::new();
        let fabric = TcpFabric::new(TcpCost::default());
        let sh = cluster.add_host("server");
        let fs = MemFs::new();
        fs.create(ROOT_ID, "shared").unwrap();
        let server = spawn_nfs_server(
            &kernel,
            &fabric,
            sh,
            fs.clone(),
            2049,
            NfsServerCost::default(),
        );
        const N: usize = 4;
        for i in 0..N {
            let fabric = fabric.clone();
            let host = cluster.add_host(&format!("c{i}"));
            let sid = server.host.id;
            kernel.spawn(&format!("client{i}"), move |ctx| {
                let c =
                    NfsClient::mount(ctx, &fabric, &host, sid, 2049, NfsClientConfig::default())
                        .unwrap();
                let f = c.lookup(ctx, ROOT_ID, "shared").unwrap();
                // Disjoint regions; all four write concurrently.
                let data = vec![i as u8 + 1; 64 << 10];
                c.write(ctx, f.id, (i * (64 << 10)) as u64, &data).unwrap();
                c.unmount(ctx);
            });
        }
        kernel.run();
        let f = fs.resolve("/shared").unwrap();
        assert_eq!(f.size, (N * (64 << 10)) as u64);
        for i in 0..N {
            let got = fs.read(f.id, (i * (64 << 10)) as u64, 1).unwrap();
            assert_eq!(got[0], i as u8 + 1);
        }
        assert_eq!(server.stats.writes.ops.get(), (N * 2) as u64);
    }
}
