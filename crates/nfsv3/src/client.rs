//! The NFS client: synchronous RPCs over a TCP socket, an attribute cache,
//! and rsize/wsize transfer chunking — the pieces of a 2001 kernel NFS
//! client that matter for I/O performance.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use memfs::{FileAttr, NodeId};
use parking_lot::Mutex;
use simnet::cost::HostCost;
use simnet::time::units::*;
use simnet::{ActorCtx, ByteMeter, Host, HostId, SimDuration, SimTime};
use tcpnet::{TcpError, TcpFabric};

use crate::proto::{self, NfsProc, NfsStatus, Stable};
use crate::xdr::{XdrDec, XdrEnc};

/// RPC retransmit policy: what the `timeo`/`retrans` mount options control
/// on a real NFS client.
///
/// `base_timeout` doubles as the attribute-cache lifetime (acregmin): the
/// old hardcoded 30 ms `ac_timeout` became this knob, so one duration
/// governs both how long the client trusts cached attributes and how long
/// it waits before resending an unanswered RPC.
///
/// Retransmission is only *armed* when the mount's `TcpFabric` has a fault
/// plan attached. On a fault-free fabric nothing can be lost, and leaving
/// the timer unarmed keeps fault-free runs byte-identical regardless of
/// server load (a heavily queued server must not trigger spurious
/// retransmits in baseline experiments).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Timeout before the first retransmit (`timeo`). Also the attribute
    /// cache lifetime.
    pub base_timeout: SimDuration,
    /// Multiplier applied to the timeout after each unanswered attempt
    /// (exponential backoff; values < 1 are treated as 1).
    pub backoff_factor: u32,
    /// Total send attempts before the call fails with
    /// [`NfsError::TimedOut`] (`retrans` + 1; values < 1 are treated as 1).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_timeout: SimDuration::from_millis(30),
            backoff_factor: 2,
            max_attempts: 8,
        }
    }
}

/// Client configuration (mount options).
#[derive(Debug, Clone, Copy)]
pub struct NfsClientConfig {
    /// Maximum READ transfer per RPC.
    pub rsize: u64,
    /// Maximum WRITE transfer per RPC.
    pub wsize: u64,
    /// RPC retransmit policy; its `base_timeout` is also the attribute
    /// cache lifetime (acregmin-style).
    pub retry: RetryPolicy,
    /// Default stability for writes.
    pub stable: Stable,
    /// Enable the client data (page) cache. 2001 kernel clients cached
    /// reads in the page cache with attribute-based revalidation — fast for
    /// re-reads, but only weakly consistent across clients (the reason
    /// ROMIO required `noac`-style mounts for correct MPI-IO). Default off
    /// to keep multi-client runs strongly consistent.
    pub data_cache: bool,
    /// Page size of the data cache.
    pub cache_page: u64,
    /// Client CPU per RPC (encode/decode + RPC layer), beyond socket costs.
    pub per_rpc_cpu: SimDuration,
    /// Host primitives.
    pub host_cost: HostCost,
}

impl Default for NfsClientConfig {
    fn default() -> Self {
        NfsClientConfig {
            rsize: 32 << 10,
            wsize: 32 << 10,
            retry: RetryPolicy::default(),
            data_cache: false,
            cache_page: 4096,
            stable: Stable::FileSync,
            per_rpc_cpu: us(6),
            host_cost: HostCost::default(),
        }
    }
}

/// NFS client errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NfsError {
    /// Server returned a non-OK status.
    Status(NfsStatus),
    /// Transport failure; carries the socket-level cause.
    Transport(TcpError),
    /// Malformed reply.
    Protocol,
    /// Every retransmit attempt went unanswered (see [`RetryPolicy`]).
    TimedOut,
}

impl From<TcpError> for NfsError {
    fn from(e: TcpError) -> NfsError {
        NfsError::Transport(e)
    }
}

impl std::fmt::Display for NfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NfsError::Status(s) => write!(f, "NFS server returned {s:?}"),
            NfsError::Transport(e) => write!(f, "NFS transport failure: {e}"),
            NfsError::Protocol => write!(f, "malformed NFS reply"),
            NfsError::TimedOut => write!(f, "NFS call timed out after all retransmits"),
        }
    }
}

impl std::error::Error for NfsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NfsError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

/// Convenience alias.
pub type NfsResult<T> = Result<T, NfsError>;

/// Client-side counters.
#[derive(Clone, Default)]
pub struct NfsClientStats {
    /// RPCs issued.
    pub rpcs: simnet::Counter,
    /// READ traffic.
    pub reads: ByteMeter,
    /// WRITE traffic.
    pub writes: ByteMeter,
    /// Attribute-cache hits.
    pub ac_hits: simnet::Counter,
    /// Attribute-cache misses.
    pub ac_misses: simnet::Counter,
    /// Data-cache page hits.
    pub dc_hits: simnet::Counter,
    /// Data-cache page misses.
    pub dc_misses: simnet::Counter,
}

/// Page-cache storage: (file id, page index) -> (bytes, version fetched).
type PageCache = HashMap<(u64, u64), (Vec<u8>, u64)>;

/// A mounted NFS client.
pub struct NfsClient {
    sock: tcpnet::Socket,
    host: Host,
    config: NfsClientConfig,
    xid: AtomicU32,
    attr_cache: Mutex<HashMap<u64, (FileAttr, SimTime)>>,
    /// Page cache: (fh, page index) -> (bytes, file version when fetched).
    data_cache: Mutex<PageCache>,
    /// Whether the retransmit timer is armed. True only when the mount's
    /// fabric carried a fault plan: on a lossless fabric a reply always
    /// arrives, and never arming the timer keeps fault-free runs
    /// byte-identical no matter how slow the server is.
    retransmit: bool,
    /// Replies that arrived while the split-phase path was draining the
    /// stream for a different xid. The synchronous path never stashes
    /// here: it matches replies in issue order.
    async_replies: Mutex<HashMap<u32, Vec<u8>>>,
    /// Client-side counters.
    pub stats: NfsClientStats,
}

impl NfsClient {
    /// Mount: connect to the server at `(server, port)` from `host`.
    pub fn mount(
        ctx: &ActorCtx,
        fabric: &TcpFabric,
        host: &Host,
        server: HostId,
        port: u16,
        config: NfsClientConfig,
    ) -> NfsResult<NfsClient> {
        let retransmit = fabric.fault_plan().is_some();
        // Pre-register so lossless runs snapshot an explicit zero and
        // checked bench lookups never mistake "absent" for "never fired".
        let _ = ctx.metrics().counter("nfs.retrans");
        let sock = fabric.connect(ctx, host, server, port)?;
        Ok(NfsClient {
            sock,
            host: host.clone(),
            config,
            xid: AtomicU32::new(1),
            attr_cache: Mutex::new(HashMap::new()),
            data_cache: Mutex::new(HashMap::new()),
            retransmit,
            async_replies: Mutex::new(HashMap::new()),
            stats: NfsClientStats::default(),
        })
    }

    /// The mount's configuration.
    pub fn config(&self) -> &NfsClientConfig {
        &self.config
    }

    /// One synchronous RPC: frame, send, await the matching reply.
    fn call(&self, ctx: &ActorCtx, proc_: NfsProc, args: XdrEnc) -> NfsResult<Vec<u8>> {
        let xid = self.xid.fetch_add(1, Ordering::Relaxed);
        self.stats.rpcs.inc();
        // Whole-RPC virtual-time span: accrues nfs.rpc_ns / nfs.rpc.calls
        // for the per-layer breakdown, and one trace event on completion.
        let span = ctx.span("nfs", "rpc");
        if ctx.obs().enabled() {
            ctx.trace(
                "nfs",
                "rpc.start",
                &[
                    ("xid", obs::Value::U64(xid as u64)),
                    ("proc", obs::Value::Str(&format!("{proc_:?}"))),
                ],
            );
        }
        let _span = span;
        self.host.compute(ctx, self.config.per_rpc_cpu);
        let mut e = XdrEnc::new();
        e.u32(xid);
        e.u32(proc_ as u32);
        let mut body = e.finish();
        body.extend_from_slice(&args.finish());
        let framed = proto::frame(&body);

        let reply = if self.retransmit {
            self.exchange_with_retransmit(ctx, xid, &framed)?
        } else {
            self.sock.send(ctx, &framed);
            let hdr = self.sock.recv_exact(ctx, 4)?;
            let len = u32::from_be_bytes(hdr.try_into().unwrap()) as usize;
            let reply = self.sock.recv_exact(ctx, len)?;
            let rxid = XdrDec::new(&reply).u32().map_err(|_| NfsError::Protocol)?;
            if rxid != xid {
                return Err(NfsError::Protocol);
            }
            reply
        };

        Self::decode_reply(&reply)
    }

    /// Strip a matched reply's header: verify the status, return the
    /// payload.
    fn decode_reply(reply: &[u8]) -> NfsResult<Vec<u8>> {
        let mut d = XdrDec::new(reply);
        d.u32().map_err(|_| NfsError::Protocol)?; // xid, already matched
        let status = NfsStatus::from_u32(d.u32().map_err(|_| NfsError::Protocol)?);
        if status != NfsStatus::Ok {
            return Err(NfsError::Status(status));
        }
        Ok(reply[8..].to_vec())
    }

    /// Issue half of one split-phase RPC: frame and send without waiting
    /// for the reply. Returns the xid and the framed bytes (kept so the
    /// completion half can retransmit). Unlike [`Self::call`] this opens
    /// no `nfs.rpc` span — the wall time of a split-phase RPC overlaps the
    /// caller's other work, so a blocking-style span would double-count.
    fn send_rpc(&self, ctx: &ActorCtx, proc_: NfsProc, args: XdrEnc) -> (u32, Vec<u8>) {
        let xid = self.xid.fetch_add(1, Ordering::Relaxed);
        self.stats.rpcs.inc();
        if ctx.obs().enabled() {
            ctx.trace(
                "nfs",
                "rpc.issue",
                &[
                    ("xid", obs::Value::U64(xid as u64)),
                    ("proc", obs::Value::Str(&format!("{proc_:?}"))),
                ],
            );
        }
        self.host.compute(ctx, self.config.per_rpc_cpu);
        let mut e = XdrEnc::new();
        e.u32(xid);
        e.u32(proc_ as u32);
        let mut body = e.finish();
        body.extend_from_slice(&args.finish());
        let framed = proto::frame(&body);
        self.sock.send(ctx, &framed);
        (xid, framed)
    }

    /// Completion half of one split-phase RPC: await the reply matching
    /// `xid`, stashing replies to other outstanding split-phase RPCs that
    /// arrive first. With the retransmit timer armed, unanswered deadlines
    /// resend `framed` under the usual backoff; stale duplicates overwrite
    /// their stash slot harmlessly (the server's duplicate-request cache
    /// makes the replies identical).
    fn recv_rpc(&self, ctx: &ActorCtx, xid: u32, framed: &[u8]) -> NfsResult<Vec<u8>> {
        if !self.retransmit {
            loop {
                if let Some(reply) = self.async_replies.lock().remove(&xid) {
                    return Self::decode_reply(&reply);
                }
                let hdr = self.sock.recv_exact(ctx, 4)?;
                let len = u32::from_be_bytes(hdr.try_into().unwrap()) as usize;
                let reply = self.sock.recv_exact(ctx, len)?;
                let rxid = XdrDec::new(&reply).u32().map_err(|_| NfsError::Protocol)?;
                if rxid == xid {
                    return Self::decode_reply(&reply);
                }
                self.async_replies.lock().insert(rxid, reply);
            }
        }
        let policy = self.config.retry;
        let mut timeout = policy.base_timeout;
        let mut attempt = 1u32;
        loop {
            if let Some(reply) = self.async_replies.lock().remove(&xid) {
                return Self::decode_reply(&reply);
            }
            let deadline = ctx.now() + timeout;
            while let Some(hdr) = self.sock.recv_exact_deadline(ctx, 4, deadline)? {
                let len = u32::from_be_bytes(hdr.try_into().unwrap()) as usize;
                // Header seen: the body is in flight; wait for all of it.
                let reply = self.sock.recv_exact(ctx, len)?;
                let rxid = XdrDec::new(&reply).u32().map_err(|_| NfsError::Protocol)?;
                if rxid == xid {
                    return Self::decode_reply(&reply);
                }
                self.async_replies.lock().insert(rxid, reply);
            }
            if attempt >= policy.max_attempts.max(1) {
                ctx.metrics().counter("nfs.timeouts").inc();
                ctx.trace(
                    "nfs",
                    "rpc.timeout",
                    &[
                        ("xid", obs::Value::U64(xid as u64)),
                        ("attempts", obs::Value::U64(attempt as u64)),
                    ],
                );
                return Err(NfsError::TimedOut);
            }
            attempt += 1;
            ctx.metrics().counter("nfs.retrans").inc();
            ctx.trace(
                "nfs",
                "rpc.retrans",
                &[
                    ("xid", obs::Value::U64(xid as u64)),
                    ("attempt", obs::Value::U64(attempt as u64)),
                ],
            );
            self.sock.send(ctx, framed);
            timeout = timeout * u64::from(policy.backoff_factor.max(1));
        }
    }

    /// Send `framed` and wait for the reply matching `xid`, retransmitting
    /// on timeout per [`RetryPolicy`]. Replies whose xid doesn't match are
    /// stale duplicates from an earlier retransmit round and are skipped
    /// (counted in `nfs.stale_replies`). The server's duplicate-request
    /// cache makes retransmits of non-idempotent procedures safe.
    fn exchange_with_retransmit(
        &self,
        ctx: &ActorCtx,
        xid: u32,
        framed: &[u8],
    ) -> NfsResult<Vec<u8>> {
        let policy = self.config.retry;
        let mut timeout = policy.base_timeout;
        let mut attempt = 1u32;
        loop {
            self.sock.send(ctx, framed);
            let deadline = ctx.now() + timeout;
            // Drain replies until ours arrives or the deadline passes.
            let timed_out = loop {
                let Some(hdr) = self.sock.recv_exact_deadline(ctx, 4, deadline)? else {
                    break true;
                };
                let len = u32::from_be_bytes(hdr.try_into().unwrap()) as usize;
                // Header seen: the body is in flight; wait for all of it.
                let reply = self.sock.recv_exact(ctx, len)?;
                let rxid = XdrDec::new(&reply).u32().map_err(|_| NfsError::Protocol)?;
                if rxid != xid {
                    ctx.metrics().counter("nfs.stale_replies").inc();
                    continue;
                }
                return Ok(reply);
            };
            debug_assert!(timed_out);
            if attempt >= policy.max_attempts.max(1) {
                ctx.metrics().counter("nfs.timeouts").inc();
                ctx.trace(
                    "nfs",
                    "rpc.timeout",
                    &[
                        ("xid", obs::Value::U64(xid as u64)),
                        ("attempts", obs::Value::U64(attempt as u64)),
                    ],
                );
                return Err(NfsError::TimedOut);
            }
            attempt += 1;
            ctx.metrics().counter("nfs.retrans").inc();
            ctx.trace(
                "nfs",
                "rpc.retrans",
                &[
                    ("xid", obs::Value::U64(xid as u64)),
                    ("attempt", obs::Value::U64(attempt as u64)),
                ],
            );
            timeout = timeout * u64::from(policy.backoff_factor.max(1));
        }
    }

    fn cache_attr(&self, ctx: &ActorCtx, a: FileAttr) {
        self.attr_cache
            .lock()
            .insert(a.id.0, (a, ctx.now() + self.config.retry.base_timeout));
    }

    /// Drop a cached attribute entry (close-to-open consistency point).
    pub fn invalidate_attr(&self, fh: NodeId) {
        self.attr_cache.lock().remove(&fh.0);
    }

    /// NULL ping.
    pub fn null(&self, ctx: &ActorCtx) -> NfsResult<()> {
        self.call(ctx, NfsProc::Null, XdrEnc::new()).map(|_| ())
    }

    /// GETATTR, served from the attribute cache when fresh. An expired
    /// entry revalidates against the server (and drops stale cached pages)
    /// rather than just refetching.
    pub fn getattr(&self, ctx: &ActorCtx, fh: NodeId) -> NfsResult<FileAttr> {
        if let Some((a, exp)) = self.attr_cache.lock().get(&fh.0) {
            if *exp > ctx.now() {
                self.stats.ac_hits.inc();
                ctx.metrics().counter("nfs.attrcache.hits").inc();
                return Ok(*a);
            }
        }
        self.stats.ac_misses.inc();
        ctx.metrics().counter("nfs.attrcache.misses").inc();
        self.revalidate_attr(ctx, fh)
    }

    /// Force a round trip to the server and reconcile the caches against
    /// its answer: the same revalidation contract the DAFS client applies
    /// after lease loss, keyed on the [`FileAttr::version`] change token.
    /// If the server's version differs from the cached attribute's, another
    /// client wrote the file — every cached page is dropped rather than
    /// left to dangle behind the stale tag. Callers that need
    /// external-write visibility *now* (close-to-open points, `MPI_File_sync`)
    /// use this instead of waiting out the attribute TTL.
    pub fn revalidate_attr(&self, ctx: &ActorCtx, fh: NodeId) -> NfsResult<FileAttr> {
        let prev = self.attr_cache.lock().get(&fh.0).map(|(a, _)| a.version);
        let a = self.getattr_uncached(ctx, fh)?;
        if prev.is_some_and(|p| p != a.version) {
            ctx.metrics().counter("nfs.attrcache.revalidations").inc();
            self.invalidate_data(fh);
        }
        Ok(a)
    }

    /// GETATTR bypassing the cache.
    pub fn getattr_uncached(&self, ctx: &ActorCtx, fh: NodeId) -> NfsResult<FileAttr> {
        let mut e = XdrEnc::new();
        e.u64(fh.0);
        let r = self.call(ctx, NfsProc::GetAttr, e)?;
        let a = proto::dec_attr(&mut XdrDec::new(&r)).map_err(|_| NfsError::Protocol)?;
        self.cache_attr(ctx, a);
        Ok(a)
    }

    /// SETATTR (truncate to `size`).
    pub fn truncate(&self, ctx: &ActorCtx, fh: NodeId, size: u64) -> NfsResult<FileAttr> {
        let mut e = XdrEnc::new();
        e.u64(fh.0).u32(1).u64(size);
        let r = self.call(ctx, NfsProc::SetAttr, e)?;
        let a = proto::dec_attr(&mut XdrDec::new(&r)).map_err(|_| NfsError::Protocol)?;
        self.cache_attr(ctx, a);
        self.invalidate_data(fh);
        Ok(a)
    }

    /// LOOKUP `name` in directory `dir`.
    pub fn lookup(&self, ctx: &ActorCtx, dir: NodeId, name: &str) -> NfsResult<FileAttr> {
        let mut e = XdrEnc::new();
        e.u64(dir.0).string(name);
        let r = self.call(ctx, NfsProc::Lookup, e)?;
        let a = proto::dec_attr(&mut XdrDec::new(&r)).map_err(|_| NfsError::Protocol)?;
        self.cache_attr(ctx, a);
        Ok(a)
    }

    /// CREATE a regular file.
    pub fn create(&self, ctx: &ActorCtx, dir: NodeId, name: &str) -> NfsResult<FileAttr> {
        let mut e = XdrEnc::new();
        e.u64(dir.0).string(name);
        let r = self.call(ctx, NfsProc::Create, e)?;
        let a = proto::dec_attr(&mut XdrDec::new(&r)).map_err(|_| NfsError::Protocol)?;
        self.cache_attr(ctx, a);
        Ok(a)
    }

    /// MKDIR.
    pub fn mkdir(&self, ctx: &ActorCtx, dir: NodeId, name: &str) -> NfsResult<FileAttr> {
        let mut e = XdrEnc::new();
        e.u64(dir.0).string(name);
        let r = self.call(ctx, NfsProc::Mkdir, e)?;
        proto::dec_attr(&mut XdrDec::new(&r)).map_err(|_| NfsError::Protocol)
    }

    /// REMOVE a regular file.
    pub fn remove(&self, ctx: &ActorCtx, dir: NodeId, name: &str) -> NfsResult<()> {
        let mut e = XdrEnc::new();
        e.u64(dir.0).string(name);
        self.call(ctx, NfsProc::Remove, e).map(|_| ())
    }

    /// RMDIR.
    pub fn rmdir(&self, ctx: &ActorCtx, dir: NodeId, name: &str) -> NfsResult<()> {
        let mut e = XdrEnc::new();
        e.u64(dir.0).string(name);
        self.call(ctx, NfsProc::Rmdir, e).map(|_| ())
    }

    /// RENAME.
    pub fn rename(
        &self,
        ctx: &ActorCtx,
        from: NodeId,
        name: &str,
        to: NodeId,
        to_name: &str,
    ) -> NfsResult<()> {
        let mut e = XdrEnc::new();
        e.u64(from.0).string(name).u64(to.0).string(to_name);
        self.call(ctx, NfsProc::Rename, e).map(|_| ())
    }

    /// READDIR: (name, file id) pairs.
    pub fn readdir(&self, ctx: &ActorCtx, dir: NodeId) -> NfsResult<Vec<(String, NodeId)>> {
        let mut e = XdrEnc::new();
        e.u64(dir.0);
        let r = self.call(ctx, NfsProc::ReadDir, e)?;
        let mut d = XdrDec::new(&r);
        let n = d.u32().map_err(|_| NfsError::Protocol)?;
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let id = NodeId(d.u64().map_err(|_| NfsError::Protocol)?);
            let name = d.string().map_err(|_| NfsError::Protocol)?;
            out.push((name, id));
        }
        Ok(out)
    }

    /// One READ RPC, at most `rsize` bytes. Returns (data, eof).
    fn read_rpc(
        &self,
        ctx: &ActorCtx,
        fh: NodeId,
        off: u64,
        len: u64,
    ) -> NfsResult<(Vec<u8>, bool)> {
        let mut e = XdrEnc::new();
        e.u64(fh.0).u64(off).u32(len.min(self.config.rsize) as u32);
        let r = self.call(ctx, NfsProc::Read, e)?;
        let mut d = XdrDec::new(&r);
        let _count = d.u32().map_err(|_| NfsError::Protocol)?;
        let eof = d.u32().map_err(|_| NfsError::Protocol)? != 0;
        let data = d.opaque().map_err(|_| NfsError::Protocol)?;
        // Copy from the RPC buffer into the application buffer.
        self.host
            .compute(ctx, self.config.host_cost.copy(data.len() as u64));
        self.stats.reads.record(data.len() as u64);
        Ok((data, eof))
    }

    /// Read `len` bytes at `off`, issuing as many READ RPCs as rsize
    /// requires. Short result at EOF. With `data_cache` enabled, pages are
    /// served from the client page cache after attribute revalidation.
    pub fn read(&self, ctx: &ActorCtx, fh: NodeId, off: u64, len: u64) -> NfsResult<Vec<u8>> {
        if self.config.data_cache {
            self.cached_read(ctx, fh, off, len)
        } else {
            self.uncached_read(ctx, fh, off, len)
        }
    }

    fn uncached_read(
        &self,
        ctx: &ActorCtx,
        fh: NodeId,
        mut off: u64,
        len: u64,
    ) -> NfsResult<Vec<u8>> {
        let mut out = Vec::with_capacity(len as usize);
        let mut remaining = len;
        while remaining > 0 {
            let (data, eof) = self.read_rpc(ctx, fh, off, remaining)?;
            let n = data.len() as u64;
            out.extend_from_slice(&data);
            off += n;
            remaining -= n.min(remaining);
            if eof || n == 0 {
                break;
            }
        }
        Ok(out)
    }

    /// Page-cache read path: revalidate via (attribute-cached) GETATTR,
    /// serve hits from memory, fetch missing page runs in rsize chunks.
    ///
    /// Consistency caveat, faithful to 2001 kernel clients: another
    /// client's write is only noticed once the attribute cache entry
    /// expires — the weak model that forced `noac` mounts under MPI-IO.
    /// The caveat covers *cached pages* only: where this path has to go to
    /// the server it trusts the per-RPC `eof`, exactly like
    /// [`NfsClient::uncached_read`], so the two paths return the same
    /// length even for a read spanning another client's concurrent
    /// extension. (It used to clamp the request to the attribute-cached
    /// `attr.size`, silently shortening such reads.)
    fn cached_read(&self, ctx: &ActorCtx, fh: NodeId, off: u64, len: u64) -> NfsResult<Vec<u8>> {
        let page = self.config.cache_page.max(512);
        let attr = self.getattr(ctx, fh)?;
        let v = attr.version;
        if len == 0 {
            return Ok(Vec::new());
        }
        let end = off + len;
        let first = off / page;
        let last = (end - 1) / page;
        // Collect runs of pages that miss (absent or stale).
        let mut missing: Vec<(u64, u64)> = Vec::new(); // [start, end) page runs
        {
            let dc = self.data_cache.lock();
            let mut run_start: Option<u64> = None;
            for p in first..=last {
                let hit = dc.get(&(fh.0, p)).is_some_and(|(_, pv)| *pv == v);
                if hit {
                    self.stats.dc_hits.inc();
                    ctx.metrics().counter("nfs.pagecache.hits").inc();
                    if let Some(s) = run_start {
                        missing.push((s, p));
                        run_start = None;
                    }
                } else {
                    self.stats.dc_misses.inc();
                    ctx.metrics().counter("nfs.pagecache.misses").inc();
                    if run_start.is_none() {
                        run_start = Some(p);
                    }
                }
            }
            if let Some(s) = run_start {
                missing.push((s, last + 1));
            }
        }
        for (a, b) in missing {
            let fetch_off = a * page;
            let fetch_len = b * page - fetch_off;
            // Short (or empty) at EOF per the server's authoritative word;
            // pages past EOF stay absent rather than caching emptiness.
            let data = self.uncached_read(ctx, fh, fetch_off, fetch_len)?;
            let mut dc = self.data_cache.lock();
            for (i, chunk) in data.chunks(page as usize).enumerate() {
                dc.insert((fh.0, a + i as u64), (chunk.to_vec(), v));
            }
        }
        // Assemble the answer from the cache (memory copy charged). An
        // absent or short page marks EOF: nothing past it is appended.
        let mut out = Vec::with_capacity(len as usize);
        {
            let dc = self.data_cache.lock();
            for p in first..=last {
                let page_base = p * page;
                let Some((bytes, _)) = dc.get(&(fh.0, p)) else {
                    break;
                };
                let s = off.max(page_base) - page_base;
                let e = end.min(page_base + page) - page_base;
                if (s as usize) >= bytes.len() {
                    break;
                }
                out.extend_from_slice(&bytes[s as usize..(e as usize).min(bytes.len())]);
                if (e as usize) > bytes.len() {
                    break;
                }
            }
        }
        self.host
            .compute(ctx, self.config.host_cost.copy(out.len() as u64));
        Ok(out)
    }

    /// Drop every cached page of a file (close-to-open consistency point).
    pub fn invalidate_data(&self, fh: NodeId) {
        self.data_cache.lock().retain(|(f, _), _| *f != fh.0);
    }

    /// Write `data` at `off`, chunked by wsize, at the mount's stability
    /// level. UNSTABLE writes are followed by a COMMIT when `commit_after`.
    pub fn write(
        &self,
        ctx: &ActorCtx,
        fh: NodeId,
        mut off: u64,
        data: &[u8],
    ) -> NfsResult<FileAttr> {
        let mut attr = None;
        for chunk in data.chunks(self.config.wsize.max(1) as usize) {
            // Application buffer into the RPC buffer.
            self.host
                .compute(ctx, self.config.host_cost.copy(chunk.len() as u64));
            let prev = self.attr_cache.lock().get(&fh.0).map(|(a, _)| a.version);
            let mut e = XdrEnc::new();
            e.u64(fh.0)
                .u64(off)
                .u32(self.config.stable as u32)
                .opaque(chunk);
            let r = self.call(ctx, NfsProc::Write, e)?;
            let mut d = XdrDec::new(&r);
            let _count = d.u32().map_err(|_| NfsError::Protocol)?;
            let _committed = d.u32().map_err(|_| NfsError::Protocol)?;
            let a = proto::dec_attr(&mut d).map_err(|_| NfsError::Protocol)?;
            self.cache_attr(ctx, a);
            if self.config.data_cache {
                let page = self.config.cache_page.max(512);
                let cover_first = off / page;
                let cover_last = (off + chunk.len() as u64 - 1) / page;
                let mut dc = self.data_cache.lock();
                dc.retain(|(f, p), _| *f != fh.0 || *p < cover_first || *p > cover_last);
                if prev.is_some_and(|p| p + 1 == a.version) {
                    // The version advanced by exactly our write: the
                    // surviving pages are still current from this client's
                    // point of view, so carry their tags forward.
                    for ((f, _), entry) in dc.iter_mut() {
                        if *f == fh.0 {
                            entry.1 = a.version;
                        }
                    }
                } else {
                    // The change token jumped (or we had no attribute to
                    // compare): another client wrote between our reads and
                    // this write. Re-tagging would bless stale pages with
                    // the fresh version forever — drop them instead.
                    dc.retain(|(f, _), _| *f != fh.0);
                }
            }
            attr = Some(a);
            off += chunk.len() as u64;
            self.stats.writes.record(chunk.len() as u64);
        }
        match attr {
            Some(a) => Ok(a),
            // Zero-length write: behave like getattr.
            None => self.getattr(ctx, fh),
        }
    }

    /// Issue half of a split-phase write: send every WRITE RPC (chunked
    /// by wsize) without waiting for replies, so the server processes
    /// them while the caller overlaps other work. Collect with
    /// [`Self::write_finish`].
    pub fn write_begin(
        &self,
        ctx: &ActorCtx,
        fh: NodeId,
        mut off: u64,
        data: &[u8],
    ) -> NfsPendingWrite {
        let mut rpcs = Vec::new();
        for chunk in data.chunks(self.config.wsize.max(1) as usize) {
            // Application buffer into the RPC buffer.
            self.host
                .compute(ctx, self.config.host_cost.copy(chunk.len() as u64));
            let mut e = XdrEnc::new();
            e.u64(fh.0)
                .u64(off)
                .u32(self.config.stable as u32)
                .opaque(chunk);
            let (xid, framed) = self.send_rpc(ctx, NfsProc::Write, e);
            rpcs.push((xid, framed, off, chunk.len() as u64));
            off += chunk.len() as u64;
            self.stats.writes.record(chunk.len() as u64);
        }
        NfsPendingWrite { fh, rpcs }
    }

    /// Completion half of [`Self::write_begin`]: await every reply in
    /// issue order, refreshing the attribute cache and invalidating
    /// written pages exactly as the synchronous path does. Zero-length
    /// writes behave like getattr.
    pub fn write_finish(&self, ctx: &ActorCtx, p: NfsPendingWrite) -> NfsResult<FileAttr> {
        let mut attr = None;
        for (xid, framed, off, len) in p.rpcs {
            let r = self.recv_rpc(ctx, xid, &framed)?;
            let mut d = XdrDec::new(&r);
            let _count = d.u32().map_err(|_| NfsError::Protocol)?;
            let _committed = d.u32().map_err(|_| NfsError::Protocol)?;
            let a = proto::dec_attr(&mut d).map_err(|_| NfsError::Protocol)?;
            self.cache_attr(ctx, a);
            if self.config.data_cache {
                let page = self.config.cache_page.max(512);
                let cover_first = off / page;
                let cover_last = (off + len - 1) / page;
                let mut dc = self.data_cache.lock();
                dc.retain(|(f, pg), _| *f != p.fh.0 || *pg < cover_first || *pg > cover_last);
                // Our own write bumped the version; the surviving pages
                // are still current from this client's point of view.
                for ((f, _), entry) in dc.iter_mut() {
                    if *f == p.fh.0 {
                        entry.1 = a.version;
                    }
                }
            }
            attr = Some(a);
        }
        match attr {
            Some(a) => Ok(a),
            None => self.getattr(ctx, p.fh),
        }
    }

    /// Issue half of a split-phase read: send a READ RPC for every rsize
    /// chunk of `[off, off+len)` up front. The synchronous path stops
    /// chunking when it sees EOF; here the tail RPCs are already posted,
    /// so EOF shows up as short or empty replies that
    /// [`Self::read_finish`] trims.
    pub fn read_begin(&self, ctx: &ActorCtx, fh: NodeId, off: u64, len: u64) -> NfsPendingRead {
        let mut rpcs = Vec::new();
        let mut done = 0u64;
        while done < len {
            let n = (len - done).min(self.config.rsize.max(1));
            let mut e = XdrEnc::new();
            e.u64(fh.0).u64(off + done).u32(n as u32);
            let (xid, framed) = self.send_rpc(ctx, NfsProc::Read, e);
            rpcs.push((xid, framed, off + done, n));
            done += n;
        }
        NfsPendingRead { rpcs }
    }

    /// Completion half of [`Self::read_begin`]: await every reply,
    /// concatenating data until the first short chunk (EOF). Replies past
    /// EOF are still drained so nothing is left orphaned on the stream.
    pub fn read_finish(&self, ctx: &ActorCtx, p: NfsPendingRead) -> NfsResult<Vec<u8>> {
        let mut out = Vec::new();
        let mut eof = false;
        for (xid, framed, _off, n) in &p.rpcs {
            let r = self.recv_rpc(ctx, *xid, framed)?;
            let mut d = XdrDec::new(&r);
            let _count = d.u32().map_err(|_| NfsError::Protocol)?;
            let chunk_eof = d.u32().map_err(|_| NfsError::Protocol)? != 0;
            let data = d.opaque().map_err(|_| NfsError::Protocol)?;
            if eof {
                continue; // past EOF: drain only
            }
            // Copy from the RPC buffer into the application buffer.
            self.host
                .compute(ctx, self.config.host_cost.copy(data.len() as u64));
            self.stats.reads.record(data.len() as u64);
            let short = (data.len() as u64) < *n;
            out.extend_from_slice(&data);
            if chunk_eof || short {
                eof = true;
            }
        }
        Ok(out)
    }

    /// COMMIT unstable writes to stable storage.
    pub fn commit(&self, ctx: &ActorCtx, fh: NodeId) -> NfsResult<()> {
        let mut e = XdrEnc::new();
        e.u64(fh.0);
        self.call(ctx, NfsProc::Commit, e).map(|_| ())
    }

    /// Resolve a slash-separated path from the root, LOOKUP by LOOKUP.
    pub fn resolve(&self, ctx: &ActorCtx, path: &str) -> NfsResult<FileAttr> {
        let mut cur = memfs::ROOT_ID;
        let mut attr = self.getattr(ctx, cur)?;
        for part in path.split('/').filter(|p| !p.is_empty()) {
            attr = self.lookup(ctx, cur, part)?;
            cur = attr.id;
        }
        Ok(attr)
    }

    /// Tear down the mount.
    pub fn unmount(&self, ctx: &ActorCtx) {
        self.sock.close(ctx);
    }
}

/// A split-phase WRITE in flight: issued RPCs whose replies have not been
/// collected yet. Created by [`NfsClient::write_begin`].
pub struct NfsPendingWrite {
    fh: NodeId,
    /// (xid, framed request, chunk offset, chunk length), in issue order.
    rpcs: Vec<(u32, Vec<u8>, u64, u64)>,
}

impl NfsPendingWrite {
    /// RPCs issued and not yet collected.
    pub fn in_flight(&self) -> usize {
        self.rpcs.len()
    }
}

/// A split-phase READ in flight. Created by [`NfsClient::read_begin`].
pub struct NfsPendingRead {
    /// (xid, framed request, chunk offset, chunk length), in issue order.
    rpcs: Vec<(u32, Vec<u8>, u64, u64)>,
}

impl NfsPendingRead {
    /// RPCs issued and not yet collected.
    pub fn in_flight(&self) -> usize {
        self.rpcs.len()
    }
}

/// Shared handle: several actors on one host may share a mount via `Arc`.
pub type SharedNfsClient = Arc<NfsClient>;
