//! NFSv3 wire protocol subset: procedure numbers, status codes, attribute
//! encoding, record marking.

use memfs::{FileAttr, FileType, FsError, NodeId};

use crate::xdr::{XdrDec, XdrEnc, XdrError};

/// NFSv3 procedure numbers (RFC 1813 values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum NfsProc {
    /// Ping.
    Null = 0,
    /// Fetch attributes.
    GetAttr = 1,
    /// Set attributes (truncate).
    SetAttr = 2,
    /// Directory lookup.
    Lookup = 3,
    /// Read file data.
    Read = 6,
    /// Write file data.
    Write = 7,
    /// Create a regular file.
    Create = 8,
    /// Create a directory.
    Mkdir = 9,
    /// Remove a regular file.
    Remove = 12,
    /// Remove a directory.
    Rmdir = 13,
    /// Rename.
    Rename = 14,
    /// List a directory.
    ReadDir = 16,
    /// Flush unstable writes.
    Commit = 21,
}

impl NfsProc {
    /// Parse from a wire value.
    pub fn from_u32(v: u32) -> Option<NfsProc> {
        Some(match v {
            0 => NfsProc::Null,
            1 => NfsProc::GetAttr,
            2 => NfsProc::SetAttr,
            3 => NfsProc::Lookup,
            6 => NfsProc::Read,
            7 => NfsProc::Write,
            8 => NfsProc::Create,
            9 => NfsProc::Mkdir,
            12 => NfsProc::Remove,
            13 => NfsProc::Rmdir,
            14 => NfsProc::Rename,
            16 => NfsProc::ReadDir,
            21 => NfsProc::Commit,
            _ => return None,
        })
    }
}

/// NFSv3 status codes (RFC 1813 values, subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum NfsStatus {
    /// Success.
    Ok = 0,
    /// No such file or directory.
    NoEnt = 2,
    /// I/O error (also used for malformed requests).
    Io = 5,
    /// File exists.
    Exist = 17,
    /// Invalid argument.
    Inval = 22,
    /// Not a directory.
    NotDir = 20,
    /// Is a directory.
    IsDir = 21,
    /// Directory not empty.
    NotEmpty = 66,
    /// Stale file handle.
    Stale = 70,
}

impl NfsStatus {
    /// Parse from a wire value.
    pub fn from_u32(v: u32) -> NfsStatus {
        match v {
            0 => NfsStatus::Ok,
            2 => NfsStatus::NoEnt,
            17 => NfsStatus::Exist,
            22 => NfsStatus::Inval,
            20 => NfsStatus::NotDir,
            21 => NfsStatus::IsDir,
            66 => NfsStatus::NotEmpty,
            70 => NfsStatus::Stale,
            _ => NfsStatus::Io,
        }
    }
}

impl From<FsError> for NfsStatus {
    fn from(e: FsError) -> NfsStatus {
        match e {
            FsError::NotFound => NfsStatus::NoEnt,
            FsError::Stale => NfsStatus::Stale,
            FsError::NotDirectory => NfsStatus::NotDir,
            FsError::IsDirectory => NfsStatus::IsDir,
            FsError::Exists => NfsStatus::Exist,
            FsError::NotEmpty => NfsStatus::NotEmpty,
            FsError::InvalidName => NfsStatus::Inval,
        }
    }
}

/// Write stability levels (RFC 1813).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u32)]
pub enum Stable {
    /// Server may cache; client must COMMIT later.
    Unstable = 0,
    /// Data (not attrs) on stable storage before reply.
    DataSync = 1,
    /// Everything on stable storage before reply.
    #[default]
    FileSync = 2,
}

impl Stable {
    /// Parse from a wire value (anything unknown degrades to FileSync).
    pub fn from_u32(v: u32) -> Stable {
        match v {
            0 => Stable::Unstable,
            1 => Stable::DataSync,
            _ => Stable::FileSync,
        }
    }
}

/// Encode file attributes (fattr3 subset).
pub fn enc_attr(e: &mut XdrEnc, a: &FileAttr) {
    e.u32(match a.ftype {
        FileType::Regular => 1,
        FileType::Directory => 2,
    });
    e.u64(a.id.0);
    e.u64(a.size);
    e.u64(a.version);
    e.u32(a.nlink);
}

/// Decode file attributes.
pub fn dec_attr(d: &mut XdrDec) -> Result<FileAttr, XdrError> {
    let ftype = match d.u32()? {
        1 => FileType::Regular,
        _ => FileType::Directory,
    };
    let id = NodeId(d.u64()?);
    let size = d.u64()?;
    let version = d.u64()?;
    let nlink = d.u32()?;
    Ok(FileAttr {
        id,
        ftype,
        size,
        version,
        nlink,
    })
}

/// Frame a message with the RPC record mark (4-byte length prefix; we always
/// send a single complete record).
pub fn frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use memfs::ROOT_ID;

    #[test]
    fn proc_numbers_match_rfc1813() {
        assert_eq!(NfsProc::GetAttr as u32, 1);
        assert_eq!(NfsProc::Read as u32, 6);
        assert_eq!(NfsProc::Write as u32, 7);
        assert_eq!(NfsProc::Commit as u32, 21);
        assert_eq!(NfsProc::from_u32(6), Some(NfsProc::Read));
        assert_eq!(NfsProc::from_u32(99), None);
    }

    #[test]
    fn status_roundtrip_and_fs_mapping() {
        for s in [
            NfsStatus::Ok,
            NfsStatus::NoEnt,
            NfsStatus::Exist,
            NfsStatus::NotDir,
            NfsStatus::IsDir,
            NfsStatus::NotEmpty,
            NfsStatus::Stale,
            NfsStatus::Inval,
        ] {
            assert_eq!(NfsStatus::from_u32(s as u32), s);
        }
        assert_eq!(NfsStatus::from(FsError::NotFound), NfsStatus::NoEnt);
        assert_eq!(NfsStatus::from(FsError::Stale), NfsStatus::Stale);
    }

    #[test]
    fn attr_roundtrip() {
        let a = FileAttr {
            id: ROOT_ID,
            ftype: FileType::Directory,
            size: 0,
            version: 42,
            nlink: 3,
        };
        let mut e = XdrEnc::new();
        enc_attr(&mut e, &a);
        let b = e.finish();
        let mut d = XdrDec::new(&b);
        assert_eq!(dec_attr(&mut d).unwrap(), a);
    }

    #[test]
    fn frame_prefixes_length() {
        let f = frame(b"abc");
        assert_eq!(f, vec![0, 0, 0, 3, b'a', b'b', b'c']);
    }

    #[test]
    fn stable_levels() {
        assert_eq!(Stable::from_u32(0), Stable::Unstable);
        assert_eq!(Stable::from_u32(2), Stable::FileSync);
        assert_eq!(Stable::from_u32(7), Stable::FileSync);
    }
}
