//! Minimal XDR (RFC 1832) encoding, as used by ONC RPC / NFSv3.
//!
//! Big-endian fixed-width integers; opaque byte strings carry a length and
//! are padded to 4-byte alignment. Only the subset the NFS procedures need.

/// XDR encoder over a growable buffer.
#[derive(Default)]
pub struct XdrEnc {
    buf: Vec<u8>,
}

impl XdrEnc {
    /// Fresh encoder.
    pub fn new() -> XdrEnc {
        XdrEnc::default()
    }

    /// Append an unsigned 32-bit integer.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append an unsigned 64-bit integer (XDR hyper).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a variable-length opaque: length, bytes, pad to 4.
    pub fn opaque(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        let pad = (4 - v.len() % 4) % 4;
        self.buf.extend(std::iter::repeat_n(0u8, pad));
        self
    }

    /// Append a string (XDR string == opaque of its UTF-8 bytes).
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.opaque(s.as_bytes())
    }

    /// Append already-encoded XDR bytes verbatim (no length prefix).
    pub fn raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Finish, returning the wire bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Decode errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XdrError {
    /// Ran out of bytes.
    Truncated,
    /// A length field exceeded the remaining buffer.
    BadLength,
}

/// XDR decoder over a byte slice.
pub struct XdrDec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> XdrDec<'a> {
    /// Decode from `buf`.
    pub fn new(buf: &'a [u8]) -> XdrDec<'a> {
        XdrDec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], XdrError> {
        if self.pos + n > self.buf.len() {
            return Err(XdrError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a u32.
    pub fn u32(&mut self) -> Result<u32, XdrError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a u64.
    pub fn u64(&mut self) -> Result<u64, XdrError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a variable-length opaque.
    pub fn opaque(&mut self) -> Result<Vec<u8>, XdrError> {
        let len = self.u32()? as usize;
        if len > self.buf.len() - self.pos {
            return Err(XdrError::BadLength);
        }
        let data = self.take(len)?.to_vec();
        let pad = (4 - len % 4) % 4;
        self.take(pad)?;
        Ok(data)
    }

    /// Read a string.
    pub fn string(&mut self) -> Result<String, XdrError> {
        String::from_utf8(self.opaque()?).map_err(|_| XdrError::BadLength)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_roundtrip() {
        let mut e = XdrEnc::new();
        e.u32(0xDEADBEEF).u64(0x0123456789ABCDEF);
        let b = e.finish();
        assert_eq!(b.len(), 12);
        let mut d = XdrDec::new(&b);
        assert_eq!(d.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(d.u64().unwrap(), 0x0123456789ABCDEF);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn opaque_pads_to_four() {
        for n in 0..9usize {
            let data: Vec<u8> = (0..n as u8).collect();
            let mut e = XdrEnc::new();
            e.opaque(&data);
            let b = e.finish();
            assert_eq!(b.len() % 4, 0, "n={n}");
            let mut d = XdrDec::new(&b);
            assert_eq!(d.opaque().unwrap(), data);
            assert_eq!(d.remaining(), 0);
        }
    }

    #[test]
    fn string_roundtrip() {
        let mut e = XdrEnc::new();
        e.string("héllo.dat");
        let b = e.finish();
        let mut d = XdrDec::new(&b);
        assert_eq!(d.string().unwrap(), "héllo.dat");
    }

    #[test]
    fn truncated_detected() {
        let mut d = XdrDec::new(&[0, 0]);
        assert_eq!(d.u32(), Err(XdrError::Truncated));
    }

    #[test]
    fn bad_length_detected() {
        // Claims 100 bytes but only 2 follow.
        let mut e = XdrEnc::new();
        e.u32(100).u32(0);
        let b = e.finish();
        let mut d = XdrDec::new(&b);
        assert_eq!(d.opaque(), Err(XdrError::BadLength));
    }

    #[test]
    fn mixed_sequence() {
        let mut e = XdrEnc::new();
        e.u32(7).string("x").u64(9).opaque(b"abc");
        let b = e.finish();
        let mut d = XdrDec::new(&b);
        assert_eq!(d.u32().unwrap(), 7);
        assert_eq!(d.string().unwrap(), "x");
        assert_eq!(d.u64().unwrap(), 9);
        assert_eq!(d.opaque().unwrap(), b"abc");
    }
}
