//! The NFS server: a connection-per-client front end feeding a single
//! serial `nfsd` worker.
//!
//! Structure mirrors a 2001-era single-CPU NFS server: per-connection
//! readers do only stream reassembly; all protocol decode, filesystem work,
//! and reply encoding run serially in one `nfsd` actor, so request
//! processing contends on one CPU — which is exactly what saturates first
//! in the multi-client experiments.

use std::collections::{HashMap, VecDeque};

use memfs::{MemFs, NodeId, SetAttr};
use simnet::cost::HostCost;
use simnet::time::units::*;
use simnet::{ActorCtx, ByteMeter, Counter, Host, Port, SimDuration, SimKernel};
use tcpnet::{Socket, TcpFabric};

use crate::proto::{self, NfsProc, NfsStatus, Stable};
use crate::xdr::{XdrDec, XdrEnc};

/// Server-side CPU cost constants.
#[derive(Debug, Clone, Copy)]
pub struct NfsServerCost {
    /// Fixed RPC dispatch + VFS cost per operation.
    pub per_op: SimDuration,
    /// Additional cost of a FILE_SYNC write or COMMIT (stable-storage
    /// flush; NVRAM-backed, so modest).
    pub sync: SimDuration,
    /// Host primitives (the buffer-cache copy for data ops).
    pub host: HostCost,
}

impl Default for NfsServerCost {
    fn default() -> Self {
        NfsServerCost {
            per_op: us(20),
            sync: us(40),
            host: HostCost::default(),
        }
    }
}

/// Observable server counters.
#[derive(Clone, Default)]
pub struct NfsServerStats {
    /// Total RPCs served.
    pub ops: Counter,
    /// READ traffic (ops, bytes).
    pub reads: ByteMeter,
    /// WRITE traffic (ops, bytes).
    pub writes: ByteMeter,
}

/// Handle returned by [`spawn_nfs_server`].
pub struct NfsServerHandle {
    /// The server's counters.
    pub stats: NfsServerStats,
    /// The host the server runs on (CPU meter for utilization reports).
    pub host: Host,
}

/// Start an NFS server on `host`, exporting `fs`, listening at `port`.
///
/// Spawns daemon actors on `kernel`; returns the stats handle immediately.
pub fn spawn_nfs_server(
    kernel: &SimKernel,
    fabric: &TcpFabric,
    host: Host,
    fs: MemFs,
    port: u16,
    cost: NfsServerCost,
) -> NfsServerHandle {
    let stats = NfsServerStats::default();
    // (connection id, request bytes, socket to reply on)
    let work: Port<(u32, Vec<u8>, Socket)> = Port::new("nfsd-work");

    // Acceptor: one reader daemon per connection.
    {
        let fabric = fabric.clone();
        let host = host.clone();
        let work = work.clone();
        kernel.spawn_daemon("nfs-acceptor", move |ctx| {
            let listener = fabric.listen(&host, port);
            let mut n = 0u32;
            while let Some(sock) = listener.accept(ctx) {
                let work = work.clone();
                n += 1;
                ctx.spawn_daemon(&format!("nfs-conn{n}"), move |cctx| {
                    while let Ok(hdr) = sock.recv_exact(cctx, 4) {
                        let len = u32::from_be_bytes(hdr.try_into().unwrap()) as usize;
                        let Ok(body) = sock.recv_exact(cctx, len) else {
                            break;
                        };
                        work.send(cctx, (n, body, sock.clone()), cctx.now());
                    }
                });
            }
        });
    }

    // The serial nfsd worker.
    {
        let host = host.clone();
        let stats = stats.clone();
        let work = work.clone();
        kernel.spawn_daemon("nfsd", move |ctx| {
            let mut drc = Drc::new(DRC_CAPACITY);
            while let Some((conn, req, sock)) = work.recv(ctx) {
                // Duplicate-request cache: a retransmitted xid (same
                // connection) gets the cached reply resent verbatim, so
                // non-idempotent procedures execute at most once even when
                // the client's retransmit timer fires.
                let xid = XdrDec::new(&req).u32().ok();
                if let Some(xid) = xid {
                    if let Some(cached) = drc.get(conn, xid) {
                        ctx.metrics().counter("nfs.drc.hits").inc();
                        ctx.trace(
                            "nfs",
                            "drc.hit",
                            &[
                                ("conn", obs::Value::U64(conn as u64)),
                                ("xid", obs::Value::U64(xid as u64)),
                            ],
                        );
                        let cached = cached.clone();
                        sock.send_owned(ctx, proto::frame(&cached));
                        continue;
                    }
                }
                let reply = serve_one(ctx, &host, &fs, &cost, &stats, &req);
                if let Some(xid) = xid {
                    drc.insert(conn, xid, reply.clone());
                }
                sock.send_owned(ctx, proto::frame(&reply));
            }
        });
    }

    NfsServerHandle { stats, host }
}

/// Entries retained by the duplicate-request cache. Sized like a 2001-era
/// nfsd DRC: big enough to cover every xid still inside a client's
/// retransmit window, small enough to be an afterthought in server memory.
const DRC_CAPACITY: usize = 256;

/// Duplicate-request cache: `(connection, xid) -> encoded reply`, evicted
/// FIFO at `capacity`. Keyed per connection because xids are per-client
/// counters (every client starts at 1).
///
/// Lookups and inserts charge no virtual time: the real cache probe is
/// noise next to `per_op`, and keeping the miss path free means fault-free
/// runs are byte-identical with and without this cache.
struct Drc {
    capacity: usize,
    replies: HashMap<(u32, u32), Vec<u8>>,
    order: VecDeque<(u32, u32)>,
}

impl Drc {
    fn new(capacity: usize) -> Drc {
        Drc {
            capacity,
            replies: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, conn: u32, xid: u32) -> Option<&Vec<u8>> {
        self.replies.get(&(conn, xid))
    }

    fn insert(&mut self, conn: u32, xid: u32, reply: Vec<u8>) {
        if self.replies.insert((conn, xid), reply).is_none() {
            self.order.push_back((conn, xid));
            if self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.replies.remove(&old);
                }
            }
        }
    }
}

/// Decode, execute, and encode one RPC. Charges nfsd CPU time.
fn serve_one(
    ctx: &ActorCtx,
    host: &Host,
    fs: &MemFs,
    cost: &NfsServerCost,
    stats: &NfsServerStats,
    req: &[u8],
) -> Vec<u8> {
    stats.ops.inc();
    host.compute(ctx, cost.per_op);

    let mut d = XdrDec::new(req);
    let mut e = XdrEnc::new();
    let (xid, procnum) = match (d.u32(), d.u32()) {
        (Ok(x), Ok(p)) => (x, p),
        _ => return Vec::new(),
    };
    e.u32(xid);

    let Some(proc_) = NfsProc::from_u32(procnum) else {
        e.u32(NfsStatus::Io as u32);
        return e.finish();
    };

    macro_rules! status {
        ($st:expr) => {{
            e.u32($st as u32);
            return e.finish();
        }};
    }
    macro_rules! try_fs {
        ($r:expr) => {
            match $r {
                Ok(v) => v,
                Err(err) => status!(NfsStatus::from(err)),
            }
        };
    }
    macro_rules! try_xdr {
        ($r:expr) => {
            match $r {
                Ok(v) => v,
                Err(_) => status!(NfsStatus::Io),
            }
        };
    }

    match proc_ {
        NfsProc::Null => {
            e.u32(NfsStatus::Ok as u32);
        }
        NfsProc::GetAttr => {
            let fh = NodeId(try_xdr!(d.u64()));
            let a = try_fs!(fs.getattr(fh));
            e.u32(NfsStatus::Ok as u32);
            proto::enc_attr(&mut e, &a);
        }
        NfsProc::SetAttr => {
            let fh = NodeId(try_xdr!(d.u64()));
            let has_size = try_xdr!(d.u32());
            let size = if has_size != 0 {
                Some(try_xdr!(d.u64()))
            } else {
                None
            };
            let a = try_fs!(fs.setattr(fh, SetAttr { size }));
            host.compute(ctx, cost.sync);
            e.u32(NfsStatus::Ok as u32);
            proto::enc_attr(&mut e, &a);
        }
        NfsProc::Lookup => {
            let dir = NodeId(try_xdr!(d.u64()));
            let name = try_xdr!(d.string());
            let a = try_fs!(fs.lookup(dir, &name));
            e.u32(NfsStatus::Ok as u32);
            proto::enc_attr(&mut e, &a);
        }
        NfsProc::Read => {
            let fh = NodeId(try_xdr!(d.u64()));
            let off = try_xdr!(d.u64());
            let len = try_xdr!(d.u32()) as u64;
            let data = try_fs!(fs.read_bytes(fh, off, len));
            // Buffer-cache copy into the reply.
            host.compute(ctx, cost.host.copy(data.len() as u64));
            stats.reads.record(data.len() as u64);
            let eof = off + data.len() as u64 >= try_fs!(fs.getattr(fh)).size;
            e.u32(NfsStatus::Ok as u32);
            e.u32(data.len() as u32);
            e.u32(eof as u32);
            e.opaque(&data);
        }
        NfsProc::Write => {
            let fh = NodeId(try_xdr!(d.u64()));
            let off = try_xdr!(d.u64());
            let stable = Stable::from_u32(try_xdr!(d.u32()));
            let data = try_xdr!(d.opaque());
            host.compute(ctx, cost.host.copy(data.len() as u64));
            let a = try_fs!(fs.write(fh, off, &data));
            if stable != Stable::Unstable {
                host.compute(ctx, cost.sync);
            }
            stats.writes.record(data.len() as u64);
            e.u32(NfsStatus::Ok as u32);
            e.u32(data.len() as u32);
            e.u32(stable as u32);
            proto::enc_attr(&mut e, &a);
        }
        NfsProc::Create => {
            let dir = NodeId(try_xdr!(d.u64()));
            let name = try_xdr!(d.string());
            let a = try_fs!(fs.create(dir, &name));
            host.compute(ctx, cost.sync);
            e.u32(NfsStatus::Ok as u32);
            proto::enc_attr(&mut e, &a);
        }
        NfsProc::Mkdir => {
            let dir = NodeId(try_xdr!(d.u64()));
            let name = try_xdr!(d.string());
            let a = try_fs!(fs.mkdir(dir, &name));
            host.compute(ctx, cost.sync);
            e.u32(NfsStatus::Ok as u32);
            proto::enc_attr(&mut e, &a);
        }
        NfsProc::Remove => {
            let dir = NodeId(try_xdr!(d.u64()));
            let name = try_xdr!(d.string());
            try_fs!(fs.remove(dir, &name));
            host.compute(ctx, cost.sync);
            e.u32(NfsStatus::Ok as u32);
        }
        NfsProc::Rmdir => {
            let dir = NodeId(try_xdr!(d.u64()));
            let name = try_xdr!(d.string());
            try_fs!(fs.rmdir(dir, &name));
            host.compute(ctx, cost.sync);
            e.u32(NfsStatus::Ok as u32);
        }
        NfsProc::Rename => {
            let from = NodeId(try_xdr!(d.u64()));
            let name = try_xdr!(d.string());
            let to = NodeId(try_xdr!(d.u64()));
            let to_name = try_xdr!(d.string());
            try_fs!(fs.rename(from, &name, to, &to_name));
            host.compute(ctx, cost.sync);
            e.u32(NfsStatus::Ok as u32);
        }
        NfsProc::ReadDir => {
            let dir = NodeId(try_xdr!(d.u64()));
            // Encode entries straight off the directory map, borrowed under
            // the filesystem lock — no per-call Vec<(String, NodeId)>.
            let mut n = 0u32;
            let mut body = XdrEnc::new();
            try_fs!(fs.with_readdir(dir, |name, id| {
                body.u64(id.0);
                body.string(name);
                n += 1;
            }));
            e.u32(NfsStatus::Ok as u32);
            e.u32(n);
            e.raw(&body.finish());
        }
        NfsProc::Commit => {
            let _fh = NodeId(try_xdr!(d.u64()));
            host.compute(ctx, cost.sync);
            e.u32(NfsStatus::Ok as u32);
        }
    }
    e.finish()
}
