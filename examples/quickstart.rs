//! Quickstart: four MPI ranks collectively write a block-striped file over
//! DAFS/VIA, then read it back and verify — the smallest end-to-end tour of
//! the stack.
//!
//! Run with:
//! ```sh
//! cargo run --example quickstart --release
//! ```

use mpio_dafs::mpiio::{
    read_at_all, write_at_all, Backend, Datatype, Hints, MpiFile, OpenMode, Testbed,
};

const RANKS: usize = 4;
const BLOCK: usize = 64 << 10; // 64 KiB per rank per round
const ROUNDS: usize = 8;

fn main() {
    let testbed = Testbed::new(Backend::dafs());
    let fs = testbed.fs.clone();

    let report = testbed.run(RANKS, |ctx, comm, adio| {
        let host = comm.host().clone();
        let file = MpiFile::open(
            ctx,
            adio,
            &host,
            "/demo/quickstart.dat",
            OpenMode::create(),
            Hints::default(),
        )
        .expect("open");

        // View: rank r owns every RANKS-th block of BLOCK bytes.
        let etype = Datatype::bytes(BLOCK as u64);
        let filetype = Datatype::resized(
            &Datatype::hindexed(&[(1, (comm.rank() * BLOCK) as i64)], &etype),
            0,
            (RANKS * BLOCK) as u64,
        );
        file.set_view(0, &etype, &filetype);

        // Fill my buffer with a rank-specific pattern and write collectively.
        let src = host.mem.alloc(ROUNDS * BLOCK);
        for round in 0..ROUNDS {
            host.mem.fill(
                src.offset((round * BLOCK) as u64),
                BLOCK,
                (comm.rank() * ROUNDS + round) as u8,
            );
        }
        let t0 = ctx.now();
        write_at_all(ctx, comm, &file, 0, src, (ROUNDS * BLOCK) as u64).expect("write_at_all");
        let write_time = ctx.now().since(t0);

        // Read it back collectively and verify every byte.
        let dst = host.mem.alloc(ROUNDS * BLOCK);
        let t1 = ctx.now();
        let n = read_at_all(ctx, comm, &file, 0, dst, (ROUNDS * BLOCK) as u64).expect("read");
        let read_time = ctx.now().since(t1);
        assert_eq!(n as usize, ROUNDS * BLOCK);
        for round in 0..ROUNDS {
            let got = host.mem.read_vec(dst.offset((round * BLOCK) as u64), BLOCK);
            assert!(got
                .iter()
                .all(|&b| b == (comm.rank() * ROUNDS + round) as u8));
        }

        if comm.rank() == 0 {
            let mb = (RANKS * ROUNDS * BLOCK) as f64 / 1e6;
            println!("collective write: {mb:.1} MB in {write_time} ");
            println!("collective read : {mb:.1} MB in {read_time}");
            println!(
                "aggregate write bandwidth ≈ {:.1} MB/s (virtual time)",
                mb / write_time.as_secs_f64()
            );
        }
    });

    // The server's filesystem really holds the interleaved pattern.
    let attr = fs.resolve("/demo/quickstart.dat").expect("file on server");
    assert_eq!(attr.size, (RANKS * ROUNDS * BLOCK) as u64);
    println!(
        "server file size {} bytes; job finished at virtual t={} (server CPU {})",
        attr.size, report.end_time, report.server_cpu
    );
    println!("quickstart: OK");
}
