//! Checkpointing a distributed 2-D grid — the workload class that motivated
//! MPI-IO on DAFS: an iterative stencil code periodically dumping its
//! row-partitioned global array to one shared file.
//!
//! Each rank owns a horizontal band of an N×N grid of f64-sized cells and
//! writes it through a subarray file view with collective I/O; the example
//! runs the same checkpoint on DAFS-over-VIA and on the NFS baseline and
//! prints the virtual-time comparison.
//!
//! Run with:
//! ```sh
//! cargo run --example checkpoint_stencil --release
//! ```

use mpio_dafs::mpiio::{write_at_all, Backend, Datatype, Hints, MpiFile, OpenMode, Testbed};
use mpio_dafs::simnet::SimDuration;

const N: usize = 512; // grid is N x N cells
const CELL: usize = 8; // bytes per cell (f64)
const RANKS: usize = 4;
const CHECKPOINTS: usize = 3;

fn run(backend: Backend) -> (SimDuration, f64) {
    let testbed = Testbed::new(backend);
    let fs = testbed.fs.clone();
    let report = testbed.run(RANKS, |ctx, comm, adio| {
        let host = comm.host().clone();
        let rows = N / comm.size();
        let my_first_row = comm.rank() * rows;

        // Local band: rows × N cells, plus a halo we don't checkpoint.
        let band_bytes = rows * N * CELL;
        let band = host.mem.alloc(band_bytes);

        // Subarray view: my band within the N×N global array.
        let filetype = Datatype::subarray(
            &[N as u64, N as u64],
            &[rows as u64, N as u64],
            &[my_first_row as u64, 0],
            &Datatype::bytes(CELL as u64),
        );
        for step in 0..CHECKPOINTS {
            // "Compute" an iteration: refresh the band with a step pattern.
            host.mem
                .fill(band, band_bytes, (step * RANKS + comm.rank()) as u8);
            let file = MpiFile::open(
                ctx,
                adio,
                &host,
                &format!("/ckpt/step{step}.grid"),
                OpenMode::create(),
                Hints::default(),
            )
            .expect("open checkpoint");
            file.set_view(0, &Datatype::bytes(CELL as u64), &filetype);
            write_at_all(ctx, comm, &file, 0, band, band_bytes as u64).expect("checkpoint");
            file.sync(ctx).expect("sync");
        }
    });
    // Verify the final checkpoint's layout on the server: row r belongs to
    // rank r / rows.
    let attr = fs
        .resolve(&format!("/ckpt/step{}.grid", CHECKPOINTS - 1))
        .expect("checkpoint exists");
    assert_eq!(attr.size, (N * N * CELL) as u64);
    let rows = N / RANKS;
    for r in (0..N).step_by(rows) {
        let owner = r / rows;
        let byte = fs.read(attr.id, (r * N * CELL) as u64, 1).unwrap()[0];
        assert_eq!(byte, ((CHECKPOINTS - 1) * RANKS + owner) as u8, "row {r}");
    }
    let total_mb = (N * N * CELL * CHECKPOINTS) as f64 / 1e6;
    let secs = report.end_time.as_secs_f64();
    (report.server_cpu, total_mb / secs)
}

fn main() {
    println!(
        "checkpointing {CHECKPOINTS} steps of a {N}x{N} grid ({:.1} MB each) on {RANKS} ranks\n",
        (N * N * CELL) as f64 / 1e6
    );
    let (dafs_cpu, dafs_bw) = run(Backend::dafs());
    let (nfs_cpu, nfs_bw) = run(Backend::nfs());
    println!("backend   agg-bandwidth   server-cpu");
    println!("dafs      {dafs_bw:8.1} MB/s   {dafs_cpu}");
    println!("nfs       {nfs_bw:8.1} MB/s   {nfs_cpu}");
    println!("\nDAFS/NFS checkpoint speedup: {:.2}x", dafs_bw / nfs_bw);
    assert!(dafs_bw > nfs_bw, "DAFS must beat the NFS baseline");
    println!("checkpoint_stencil: OK");
}
