//! Shared-file-pointer event logging — the second scenario class the paper
//! family cares about: many producers appending variable-size records to
//! one log, ordered by a *shared* file pointer.
//!
//! Each rank emits a stream of fixed-header/variable-payload records with
//! `MPI_File_write_shared`; the DAFS driver implements the shared pointer
//! with real protocol file locks around a hidden pointer file. The example
//! then scans the log and checks that the records tile the file exactly.
//!
//! Run with:
//! ```sh
//! cargo run --example event_log_shared --release
//! ```

use mpio_dafs::mpiio::{Backend, OpenOptions, Testbed};

const RANKS: usize = 6;
const EVENTS_PER_RANK: usize = 10;

/// Record: 8-byte header (rank, seq) + payload of (seq % 5 + 1) * 32 bytes.
fn record(rank: usize, seq: usize) -> Vec<u8> {
    let payload = (seq % 5 + 1) * 32;
    let mut r = Vec::with_capacity(8 + payload);
    r.extend_from_slice(&(rank as u32).to_le_bytes());
    r.extend_from_slice(&(seq as u32).to_le_bytes());
    r.extend(std::iter::repeat_n((rank * 16 + seq) as u8, payload));
    r
}

fn main() {
    let testbed = Testbed::new(Backend::dafs());
    let fs = testbed.fs.clone();

    let report = testbed.run(RANKS, |ctx, comm, adio| {
        let host = comm.host().clone();
        let log = OpenOptions::new()
            .create(true)
            .open(ctx, adio, &host, "/logs/events.bin")
            .expect("open log");
        for seq in 0..EVENTS_PER_RANK {
            let rec = record(comm.rank(), seq);
            let buf = host.mem.alloc(rec.len());
            host.mem.write(buf, &rec);
            log.write_shared(ctx, buf, rec.len() as u64)
                .expect("append record");
            host.mem.free(buf);
        }
        comm.barrier(ctx);
        if comm.rank() == 0 {
            println!(
                "{} ranks appended {} records in virtual {}",
                comm.size(),
                comm.size() * EVENTS_PER_RANK,
                ctx.now()
            );
        }
    });

    // Scan the log: records must tile the file exactly, each intact, with
    // per-rank sequence numbers in order.
    let attr = fs.resolve("/logs/events.bin").expect("log exists");
    let data = fs.read(attr.id, 0, attr.size).unwrap();
    let mut pos = 0usize;
    let mut next_seq = [0u32; RANKS];
    let mut count = 0;
    while pos < data.len() {
        let rank = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        let seq = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
        assert!(rank < RANKS, "corrupt record header at {pos}");
        assert_eq!(seq, next_seq[rank], "rank {rank} records out of order");
        next_seq[rank] += 1;
        let payload = (seq as usize % 5 + 1) * 32;
        let body = &data[pos + 8..pos + 8 + payload];
        assert!(
            body.iter().all(|&b| b == (rank * 16 + seq as usize) as u8),
            "torn record: rank {rank} seq {seq}"
        );
        pos += 8 + payload;
        count += 1;
    }
    assert_eq!(pos, data.len(), "log has trailing garbage");
    assert_eq!(count, RANKS * EVENTS_PER_RANK);
    println!(
        "scanned {} bytes: {count} intact records, no gaps or tears (end t={})",
        data.len(),
        report.end_time
    );
    println!("event_log_shared: OK");
}
