//! The ROMIO `perf`-style benchmark: every rank writes and reads its own
//! contiguous partition of one shared file, with and without an intervening
//! `MPI_File_sync`, across all three backends — the canonical way the
//! paper-era evaluations summarized MPI-IO throughput.
//!
//! Run with:
//! ```sh
//! cargo run --example perf_sweep --release
//! ```

use mpio_dafs::mpiio::{Backend, OpenOptions, Testbed};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const RANKS: usize = 4;
const SLAB: usize = 4 << 20; // 4 MiB per rank

struct PerfRow {
    backend: &'static str,
    write_mb_s: f64,
    write_sync_mb_s: f64,
    read_mb_s: f64,
}

fn run(backend: Backend) -> PerfRow {
    let name = backend.kind().as_str();
    let testbed = Testbed::new(backend);
    // (write_ns, write_sync_ns, read_ns) — max across ranks.
    let write_ns = Arc::new(AtomicU64::new(0));
    let wsync_ns = Arc::new(AtomicU64::new(0));
    let read_ns = Arc::new(AtomicU64::new(0));
    let (w, ws, r) = (write_ns.clone(), wsync_ns.clone(), read_ns.clone());

    testbed.run(RANKS, move |ctx, comm, adio| {
        let host = comm.host().clone();
        let file = OpenOptions::new()
            .create(true)
            .open(ctx, adio, &host, "/perf.dat")
            .expect("open");
        let buf = host.mem.alloc(SLAB);
        host.mem.fill(buf, SLAB, comm.rank() as u8 + 1);
        let my_off = (comm.rank() * SLAB) as u64;

        // Phase 1: plain write.
        comm.barrier(ctx);
        let t0 = ctx.now();
        file.write_at(ctx, my_off, buf, SLAB as u64).unwrap();
        comm.barrier(ctx);
        w.fetch_max(ctx.now().since(t0).as_nanos(), Ordering::Relaxed);

        // Phase 2: write + sync.
        comm.barrier(ctx);
        let t1 = ctx.now();
        file.write_at(ctx, my_off, buf, SLAB as u64).unwrap();
        file.sync(ctx).unwrap();
        comm.barrier(ctx);
        ws.fetch_max(ctx.now().since(t1).as_nanos(), Ordering::Relaxed);

        // Phase 3: read back.
        let dst = host.mem.alloc(SLAB);
        comm.barrier(ctx);
        let t2 = ctx.now();
        let n = file.read_at(ctx, my_off, dst, SLAB as u64).unwrap();
        comm.barrier(ctx);
        r.fetch_max(ctx.now().since(t2).as_nanos(), Ordering::Relaxed);
        assert_eq!(n as usize, SLAB);
        assert_eq!(host.mem.read_vec(dst, 4), vec![comm.rank() as u8 + 1; 4]);
    });

    let total_mb = (RANKS * SLAB) as f64 / 1e6;
    let bw = |ns: &AtomicU64| total_mb / (ns.load(Ordering::Relaxed) as f64 / 1e9);
    PerfRow {
        backend: name,
        write_mb_s: bw(&write_ns),
        write_sync_mb_s: bw(&wsync_ns),
        read_mb_s: bw(&read_ns),
    }
}

fn main() {
    println!(
        "ROMIO perf pattern: {RANKS} ranks × {} MiB contiguous partitions\n",
        SLAB >> 20
    );
    println!(
        "{:<8} {:>12} {:>14} {:>12}",
        "backend", "write MB/s", "write+sync", "read MB/s"
    );
    let mut rows = Vec::new();
    for backend in [Backend::dafs(), Backend::nfs(), Backend::ufs()] {
        let row = run(backend);
        println!(
            "{:<8} {:>12.1} {:>14.1} {:>12.1}",
            row.backend, row.write_mb_s, row.write_sync_mb_s, row.read_mb_s
        );
        rows.push(row);
    }
    // Shape assertions: DAFS beats NFS on both paths.
    let dafs = &rows[0];
    let nfs = &rows[1];
    assert!(dafs.read_mb_s > nfs.read_mb_s, "DAFS read must beat NFS");
    assert!(dafs.write_mb_s > nfs.write_mb_s, "DAFS write must beat NFS");
    println!("\nperf_sweep: OK (DAFS > NFS on both paths)");
}
