//! Integration tests spanning all crates: whole-stack scenarios through
//! the umbrella crate, with byte-level verification on the server
//! filesystem and cross-backend behavioural assertions.

use mpio_dafs::dafs::DafsClientConfig;
use mpio_dafs::mpiio::{
    read_at_all, write_at_all, Backend, Datatype, Hints, MpiFile, OpenMode, Testbed,
};
use mpio_dafs::simnet::SimDuration;
use mpio_dafs::via::ViaCost;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Eight ranks, nested-strided (matrix-column) access, collective write,
/// independent read-back, full byte verification.
#[test]
fn eight_rank_column_partitioned_matrix() {
    const N: usize = 256; // N x N matrix of 8-byte elements
    const RANKS: usize = 8;
    let tb = Testbed::new(Backend::dafs());
    let fs = tb.fs.clone();
    tb.run(RANKS, |ctx, comm, adio| {
        let host = comm.host().clone();
        let cols = N / comm.size();
        let file = MpiFile::open(
            ctx,
            adio,
            &host,
            "/matrix.bin",
            OpenMode::create(),
            Hints::default(),
        )
        .unwrap();
        // Column-block view: rank r owns columns [r*cols, (r+1)*cols).
        let ft = Datatype::subarray(
            &[N as u64, N as u64],
            &[N as u64, cols as u64],
            &[0, (comm.rank() * cols) as u64],
            &Datatype::bytes(8),
        );
        file.set_view(0, &Datatype::bytes(8), &ft);
        let mine = N * cols * 8;
        let src = host.mem.alloc(mine);
        // Values encode (row, col) so placement errors are detectable.
        for row in 0..N {
            for c in 0..cols {
                let col = comm.rank() * cols + c;
                let v = ((row as u64) << 32 | col as u64).to_le_bytes();
                host.mem
                    .write(src.offset(((row * cols + c) * 8) as u64), &v);
            }
        }
        write_at_all(ctx, comm, &file, 0, src, mine as u64).unwrap();
        comm.barrier(ctx);
        // Independent strided read-back of my own columns.
        let dst = host.mem.alloc(mine);
        let n = file.read_at(ctx, 0, dst, mine as u64).unwrap();
        assert_eq!(n as usize, mine);
        assert_eq!(host.mem.read_vec(dst, mine), host.mem.read_vec(src, mine));
    });
    // Server-side: element (row, col) must hold (row<<32 | col).
    let attr = fs.resolve("/matrix.bin").unwrap();
    assert_eq!(attr.size, (N * N * 8) as u64);
    for (row, col) in [(0usize, 0usize), (1, 37), (100, 200), (255, 255), (17, 31)] {
        let raw = fs.read(attr.id, ((row * N + col) * 8) as u64, 8).unwrap();
        let v = u64::from_le_bytes(raw.try_into().unwrap());
        assert_eq!(v, (row as u64) << 32 | col as u64, "element ({row},{col})");
    }
}

/// The same workload on DAFS and NFS must produce byte-identical files;
/// only the timing differs.
#[test]
fn backends_agree_on_file_contents() {
    fn run(backend: Backend) -> (Vec<u8>, u64) {
        let tb = Testbed::new(backend);
        let fs = tb.fs.clone();
        let report = tb.run(3, |ctx, comm, adio| {
            let host = comm.host().clone();
            let f = MpiFile::open(ctx, adio, &host, "/x", OpenMode::create(), Hints::default())
                .unwrap();
            // Interleaved 10 KiB blocks via hindexed view.
            let el = Datatype::bytes(10 << 10);
            let ft = Datatype::resized(
                &Datatype::hindexed(&[(1, (comm.rank() * (10 << 10)) as i64)], &el),
                0,
                3 * (10 << 10),
            );
            f.set_view(0, &el, &ft);
            let src = host.mem.alloc(2 * (10 << 10));
            host.mem
                .fill(src, 2 * (10 << 10), comm.rank() as u8 * 3 + 1);
            write_at_all(ctx, comm, &f, 0, src, 2 * (10 << 10)).unwrap();
        });
        let attr = fs.resolve("/x").unwrap();
        (
            fs.read(attr.id, 0, attr.size).unwrap(),
            report.end_time.as_nanos(),
        )
    }
    let (dafs_bytes, dafs_time) = run(Backend::dafs());
    let (nfs_bytes, nfs_time) = run(Backend::nfs());
    let (ufs_bytes, _) = run(Backend::ufs());
    assert_eq!(dafs_bytes, nfs_bytes);
    assert_eq!(dafs_bytes, ufs_bytes);
    assert!(
        dafs_time < nfs_time,
        "DAFS ({dafs_time}ns) must finish before NFS ({nfs_time}ns)"
    );
}

/// Client CPU overhead: a large sequential DAFS direct read must burn far
/// less client CPU than the same read over NFS (zero-copy vs copies).
#[test]
fn dafs_client_cpu_is_far_below_nfs() {
    const LEN: usize = 16 << 20;
    fn run(backend: Backend) -> SimDuration {
        let tb = Testbed::new(backend);
        // Pre-populate on the server.
        let f = tb.fs.create(memfs::ROOT_ID, "big").unwrap();
        tb.fs.write(f.id, 0, &vec![7u8; LEN]).unwrap();
        let report = tb.run(1, |ctx, comm, adio| {
            let host = comm.host().clone();
            let f = MpiFile::open(ctx, adio, &host, "/big", OpenMode::open(), Hints::default())
                .unwrap();
            let dst = host.mem.alloc(LEN);
            let n = f.read_at(ctx, 0, dst, LEN as u64).unwrap();
            assert_eq!(n as usize, LEN);
        });
        report.ranks_cpu
    }
    let dafs = run(Backend::dafs());
    let nfs = run(Backend::nfs());
    assert!(
        dafs.as_nanos() * 5 < nfs.as_nanos(),
        "client CPU: dafs {dafs} vs nfs {nfs}; expected ≥5x gap"
    );
}

/// Inline vs direct switchover: small requests stay inline, large go
/// direct, both with correct data.
#[test]
fn inline_direct_threshold_behaviour() {
    let tb = Testbed::new(Backend::dafs());
    let fs = tb.fs.clone();
    tb.run(1, |ctx, comm, adio| {
        let host = comm.host().clone();
        let f =
            MpiFile::open(ctx, adio, &host, "/t", OpenMode::create(), Hints::default()).unwrap();
        // 4 KiB (inline) then 64 KiB (direct) at disjoint offsets.
        let small = host.mem.alloc(4 << 10);
        host.mem.fill(small, 4 << 10, 0xAA);
        f.write_at(ctx, 0, small, 4 << 10).unwrap();
        let large = host.mem.alloc(64 << 10);
        host.mem.fill(large, 64 << 10, 0xBB);
        f.write_at(ctx, 4 << 10, large, 64 << 10).unwrap();
        let back = host.mem.alloc(68 << 10);
        assert_eq!(f.read_at(ctx, 0, back, 68 << 10).unwrap(), 68 << 10);
        assert_eq!(host.mem.read_vec(back, 1), vec![0xAA]);
        assert_eq!(host.mem.read_vec(back.offset(4 << 10), 1), vec![0xBB]);
    });
    let attr = fs.resolve("/t").unwrap();
    assert_eq!(attr.size, 68 << 10);
}

/// RDMA-Read-capable fabric: large writes go direct and still verify.
#[test]
fn rdma_read_fabric_write_direct_end_to_end() {
    let backend = Backend::Dafs {
        via: ViaCost {
            rdma_read_supported: true,
            ..ViaCost::default()
        },
        server: Default::default(),
        client: DafsClientConfig::default(),
    };
    let tb = Testbed::new(backend);
    let fs = tb.fs.clone();
    const LEN: usize = 1 << 20;
    tb.run(2, |ctx, comm, adio| {
        let host = comm.host().clone();
        let f = MpiFile::open(
            ctx,
            adio,
            &host,
            "/wd",
            OpenMode::create(),
            Hints::default(),
        )
        .unwrap();
        let src = host.mem.alloc(LEN);
        host.mem.fill(src, LEN, comm.rank() as u8 + 0x10);
        f.write_at(ctx, (comm.rank() * LEN) as u64, src, LEN as u64)
            .unwrap();
    });
    let attr = fs.resolve("/wd").unwrap();
    assert_eq!(attr.size, (2 * LEN) as u64);
    for r in 0..2 {
        let b = fs.read(attr.id, (r * LEN + LEN / 2) as u64, 1).unwrap();
        assert_eq!(b, vec![r as u8 + 0x10]);
    }
}

/// Collective read after collective write with a *different* number of
/// aggregators (cb_nodes hint) still returns the right bytes.
#[test]
fn cb_nodes_hint_changes_aggregators_not_answers() {
    for cb_nodes in ["1", "2", "4"] {
        let tb = Testbed::new(Backend::dafs());
        let expected_block = 32 << 10;
        tb.run(4, move |ctx, comm, adio| {
            let host = comm.host().clone();
            let mut hints = Hints::default();
            hints.set("cb_nodes", cb_nodes);
            let f = MpiFile::open(ctx, adio, &host, "/agg", OpenMode::create(), hints).unwrap();
            let el = Datatype::bytes(expected_block);
            let ft = Datatype::resized(
                &Datatype::hindexed(&[(1, (comm.rank() as u64 * expected_block) as i64)], &el),
                0,
                4 * expected_block,
            );
            f.set_view(0, &el, &ft);
            let src = host.mem.alloc(2 * expected_block as usize);
            host.mem
                .fill(src, 2 * expected_block as usize, comm.rank() as u8 + 1);
            write_at_all(ctx, comm, &f, 0, src, 2 * expected_block).unwrap();
            comm.barrier(ctx);
            let dst = host.mem.alloc(2 * expected_block as usize);
            let n = read_at_all(ctx, comm, &f, 0, dst, 2 * expected_block).unwrap();
            assert_eq!(n, 2 * expected_block);
            assert_eq!(
                host.mem.read_vec(dst, 2 * expected_block as usize),
                vec![comm.rank() as u8 + 1; 2 * expected_block as usize],
                "cb_nodes={cb_nodes}"
            );
        });
    }
}

/// Aggregate DAFS bandwidth grows with client count until the server NIC
/// saturates near the wire rate.
#[test]
fn scaling_reaches_server_wire_saturation() {
    const PER_RANK: usize = 4 << 20;
    fn agg_bw(ranks: usize) -> f64 {
        let tb = Testbed::new(Backend::dafs());
        let end = Arc::new(AtomicU64::new(0));
        let e2 = end.clone();
        tb.run(ranks, move |ctx, comm, adio| {
            let host = comm.host().clone();
            let f = MpiFile::open(ctx, adio, &host, "/s", OpenMode::create(), Hints::default())
                .unwrap();
            let src = host.mem.alloc(PER_RANK);
            comm.barrier(ctx);
            let t0 = ctx.now();
            f.write_at(ctx, (comm.rank() * PER_RANK) as u64, src, PER_RANK as u64)
                .unwrap();
            comm.barrier(ctx);
            e2.fetch_max(ctx.now().since(t0).as_nanos(), Ordering::Relaxed);
        });
        (ranks * PER_RANK) as f64 / (end.load(Ordering::Relaxed) as f64 / 1e9) / 1e6
    }
    let bw1 = agg_bw(1);
    let bw4 = agg_bw(4);
    let bw8 = agg_bw(8);
    // One client nearly saturates a DAFS server on large writes; more
    // clients must not exceed the wire and must not collapse.
    assert!(bw4 <= 111.0 && bw8 <= 111.0, "over the wire? {bw4} {bw8}");
    assert!(
        bw8 > 95.0,
        "saturated aggregate should hold near wire: {bw8}"
    );
    assert!(bw1 > 80.0, "single client underperforms: {bw1}");
}

use mpio_dafs::memfs;

/// The `dafs_cache` hint end to end: `enable` routes the MPI-IO data path
/// through the lease-coherent client cache (re-reads and get_size become
/// client-local), the default leaves the op stream untouched.
#[test]
fn dafs_cache_hint_serves_rereads_from_client_cache() {
    const LEN: usize = 64 << 10;
    fn run(cache_hint: Option<&'static str>) -> (u64, u64) {
        let tb = Testbed::new(Backend::dafs());
        let f = tb.fs.create(memfs::ROOT_ID, "hot").unwrap();
        let payload: Vec<u8> = (0..LEN as u32).map(|i| (i % 239) as u8).collect();
        tb.fs.write(f.id, 0, &payload).unwrap();
        let report = tb.run(1, move |ctx, comm, adio| {
            let host = comm.host().clone();
            let mut hints = Hints::default();
            if let Some(v) = cache_hint {
                hints.set("dafs_cache", v);
            }
            let f = MpiFile::open(ctx, adio, &host, "/hot", OpenMode::open(), hints).unwrap();
            let dst = host.mem.alloc(LEN);
            for _ in 0..4 {
                host.mem.fill(dst, LEN, 0);
                let n = f.read_at(ctx, 0, dst, LEN as u64).unwrap();
                assert_eq!(n as usize, LEN);
                assert_eq!(
                    host.mem.read_vec(dst, LEN),
                    (0..LEN as u32)
                        .map(|i| (i % 239) as u8)
                        .collect::<Vec<u8>>()
                );
                assert_eq!(f.get_size(ctx).unwrap(), LEN as u64);
            }
        });
        let metric = |k: &str| report.snapshot.get(k).map(|e| e.value()).unwrap_or(0);
        (metric("dafs.cache.hits"), metric("dafs.cache.attr_hits"))
    }
    let (hits, attr_hits) = run(Some("enable"));
    assert!(hits >= 3, "re-reads never hit the cache: {hits}");
    assert!(
        attr_hits >= 3,
        "get_size never hit the cached attr: {attr_hits}"
    );
    // Default (automatic) and explicit disable: strictly opt-in, so the
    // cache must stay cold and unregistered.
    assert_eq!(run(None), (0, 0));
    assert_eq!(run(Some("disable")), (0, 0));
}

/// Cache-aware collective buffering end to end (`romio_cb_cache` on top of
/// `dafs_cache`): aggregated windows buffer dirty in the client cache and
/// drain on the coalesced write-back flush at sync. The server file must be
/// byte-identical to the default wire path, and only the enabled run may
/// touch the flush counters.
#[test]
fn cb_cache_hint_collective_bytes_identical_and_flush_coalesced() {
    const RANKS: usize = 4;
    const CH: usize = 16; // chunks per rank
    const CHUNK: usize = 4 << 10;
    fn run(enable: bool) -> (Vec<u8>, u64, u64) {
        // Write-back buffering is session-level (client config); the
        // `romio_cb_cache` hint then opts the collective path in per file.
        let backend = Backend::Dafs {
            via: ViaCost::default(),
            server: mpio_dafs::dafs::DafsServerCost::default(),
            client: DafsClientConfig {
                cache_write_back: true,
                ..DafsClientConfig::default()
            },
        };
        let tb = Testbed::new(backend);
        let fs = tb.fs.clone();
        let report = tb.run(RANKS, move |ctx, comm, adio| {
            let host = comm.host().clone();
            let mut hints = Hints::default();
            let v = if enable { "enable" } else { "disable" };
            hints.set("dafs_cache", v);
            hints.set("romio_cb_cache", v);
            // One aggregator: the whole-file write lease admits exactly one
            // buffering rank, so that is the sweep shape cb_cache covers.
            hints.set("cb_nodes", "1");
            let f = MpiFile::open(ctx, adio, &host, "/cb", OpenMode::create(), hints).unwrap();
            // File = CH rows x RANKS cols of CHUNK-byte cells; rank r owns
            // column r, so every aggregated window interleaves all ranks.
            let ft = Datatype::subarray(
                &[CH as u64, RANKS as u64],
                &[CH as u64, 1],
                &[0, comm.rank() as u64],
                &Datatype::bytes(CHUNK as u64),
            );
            f.set_view(0, &Datatype::bytes(CHUNK as u64), &ft);
            let mine = CH * CHUNK;
            let src = host.mem.alloc(mine);
            for c in 0..CH {
                let cell: Vec<u8> = (0..CHUNK)
                    .map(|b| (comm.rank() * 31 + c * 7 + b) as u8)
                    .collect();
                host.mem.write(src.offset((c * CHUNK) as u64), &cell);
            }
            write_at_all(ctx, comm, &f, 0, src, mine as u64).unwrap();
            f.sync(ctx).unwrap();
            comm.barrier(ctx);
            let dst = host.mem.alloc(mine);
            let n = read_at_all(ctx, comm, &f, 0, dst, mine as u64).unwrap();
            assert_eq!(n as usize, mine);
            assert_eq!(host.mem.read_vec(dst, mine), host.mem.read_vec(src, mine));
        });
        let metric = |k: &str| report.snapshot.get(k).map(|e| e.value()).unwrap_or(0);
        let attr = fs.resolve("/cb").unwrap();
        assert_eq!(attr.size, (RANKS * CH * CHUNK) as u64);
        (
            fs.read(attr.id, 0, attr.size).unwrap(),
            metric("dafs.cache.flush_pages"),
            metric("dafs.cache.flush_batches"),
        )
    }
    let (cached, flush_pages, flush_batches) = run(true);
    let (plain, p_pages, p_batches) = run(false);
    assert_eq!(
        cached, plain,
        "cb_cache changed the bytes on stable storage"
    );
    assert!(
        flush_pages > 0,
        "enabled run never drained through the write-back flush"
    );
    assert!(
        flush_batches <= flush_pages.div_ceil(4),
        "flush not coalesced: {flush_batches} wire requests for {flush_pages} pages"
    );
    assert_eq!(
        (p_pages, p_batches),
        (0, 0),
        "disabled run touched the cache"
    );
}

/// Host naming is uniform across every testbed shape: `server<s>` hosts
/// first, then (on switched testbeds) the `<switch>.r<rail>` pseudo-hosts,
/// then `rank<i>` hosts — no more special-cased two-host `client`/`server`
/// worlds.
#[test]
fn testbed_host_naming_is_uniform() {
    for backend in [Backend::dafs(), Backend::nfs()] {
        let tb = Testbed::new(backend);
        tb.run(2, |_ctx, _comm, _adio| {});
    }
    // Point-to-point testbeds name the server host `server0`.
    let tb = Testbed::new(Backend::dafs());
    assert_eq!(tb.host_names(), vec!["server0"]);

    // Switched testbeds insert the fabric pseudo-hosts between servers and
    // ranks; rank hosts appear once the job spawns them.
    let tb = Testbed::switched(2, 2, 1);
    assert_eq!(
        tb.host_names(),
        vec!["server0", "server1", "leaf-srv.r0", "leaf-cli.r0"]
    );
    let names = Arc::new(std::sync::Mutex::new(Vec::new()));
    let n2 = names.clone();
    tb.run(2, move |_ctx, comm, _adio| {
        n2.lock().unwrap().push(comm.host().name().to_string());
    });
    let mut ranks = names.lock().unwrap().clone();
    ranks.sort();
    assert_eq!(ranks, vec!["rank0", "rank1"]);

    // Striped point-to-point testbeds count their servers the same way.
    let tb = Testbed::new(Backend::dafs_striped(3));
    assert_eq!(tb.host_names(), vec!["server0", "server1", "server2"]);
}
