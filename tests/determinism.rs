//! Determinism: the discrete-event substrate must produce bit-identical
//! virtual timelines for identical programs — the property every number in
//! EXPERIMENTS.md rests on.

use mpio_dafs::mpiio::{write_at_all, Backend, Datatype, Hints, MpiFile, OpenMode, Testbed};
use mpio_dafs::obs::{Obs, Snapshot};
use mpio_dafs::simnet::units::us;
use mpio_dafs::simnet::FaultPlan;

fn run_once(backend: Backend, ranks: usize) -> (u64, u64, Vec<u8>) {
    let tb = Testbed::new(backend);
    let fs = tb.fs.clone();
    let report = tb.run(ranks, move |ctx, comm, adio| {
        let host = comm.host().clone();
        let f = MpiFile::open(
            ctx,
            adio,
            &host,
            "/det",
            OpenMode::create(),
            Hints::default(),
        )
        .unwrap();
        let block = 16 << 10;
        let el = Datatype::bytes(block);
        let ft = Datatype::resized(
            &Datatype::hindexed(&[(1, (comm.rank() as u64 * block) as i64)], &el),
            0,
            ranks as u64 * block,
        );
        f.set_view(0, &el, &ft);
        let src = host.mem.alloc(3 * block as usize);
        host.mem
            .fill(src, 3 * block as usize, comm.rank() as u8 + 1);
        write_at_all(ctx, comm, &f, 0, src, 3 * block).unwrap();
        // Some independent traffic too.
        let dst = host.mem.alloc(block as usize);
        f.read_at(ctx, comm.rank() as u64, dst, block).unwrap();
    });
    let attr = fs.resolve("/det").unwrap();
    let bytes = fs.read(attr.id, 0, attr.size).unwrap();
    (
        report.end_time.as_nanos(),
        report.server_cpu.as_nanos(),
        bytes,
    )
}

#[test]
fn dafs_runs_are_bit_identical() {
    let a = run_once(Backend::dafs(), 4);
    let b = run_once(Backend::dafs(), 4);
    assert_eq!(a.0, b.0, "virtual end times differ");
    assert_eq!(a.1, b.1, "server CPU accounting differs");
    assert_eq!(a.2, b.2, "file contents differ");
}

#[test]
fn nfs_runs_are_bit_identical() {
    let a = run_once(Backend::nfs(), 4);
    let b = run_once(Backend::nfs(), 4);
    assert_eq!((a.0, a.1), (b.0, b.1));
    assert_eq!(a.2, b.2);
}

#[test]
fn rank_count_changes_timeline_not_contents_shape() {
    let two = run_once(Backend::dafs(), 2);
    let four = run_once(Backend::dafs(), 4);
    assert_ne!(two.0, four.0, "different jobs, different timelines");
    // Two-rank file covers 2 blocks per round, four-rank 4.
    assert_eq!(two.2.len(), 3 * 2 * (16 << 10));
    assert_eq!(four.2.len(), 3 * 4 * (16 << 10));
}

#[test]
fn backend_swap_changes_time_not_bytes() {
    let dafs = run_once(Backend::dafs(), 3);
    let nfs = run_once(Backend::nfs(), 3);
    assert_ne!(dafs.0, nfs.0);
    assert_eq!(dafs.2, nfs.2, "same program, same bytes, any backend");
}

// --- observability determinism ---------------------------------------------
//
// The observability layer must be as deterministic as the timeline it
// describes: two identical runs must produce byte-identical trace streams
// and equal metrics snapshots, and turning tracing *on* must not move the
// virtual clock.

/// Same program as [`run_once`], but traced into an in-memory buffer.
/// Returns (end ns, trace bytes, snapshot).
fn run_traced(backend: Backend, ranks: usize) -> (u64, Vec<u8>, Snapshot) {
    let (obs, buf) = Obs::buffered();
    let tb = Testbed::with_obs(backend, obs);
    let report = tb.run(ranks, move |ctx, comm, adio| {
        let host = comm.host().clone();
        let f = MpiFile::open(
            ctx,
            adio,
            &host,
            "/det",
            OpenMode::create(),
            Hints::default(),
        )
        .unwrap();
        let block = 16 << 10;
        let el = Datatype::bytes(block);
        let ft = Datatype::resized(
            &Datatype::hindexed(&[(1, (comm.rank() as u64 * block) as i64)], &el),
            0,
            ranks as u64 * block,
        );
        f.set_view(0, &el, &ft);
        let src = host.mem.alloc(3 * block as usize);
        host.mem
            .fill(src, 3 * block as usize, comm.rank() as u8 + 1);
        write_at_all(ctx, comm, &f, 0, src, 3 * block).unwrap();
        let dst = host.mem.alloc(block as usize);
        f.read_at(ctx, comm.rank() as u64, dst, block).unwrap();
    });
    assert!(report.traced);
    (report.end_time.as_nanos(), buf.contents(), report.snapshot)
}

#[test]
fn traced_runs_emit_byte_identical_streams() {
    let a = run_traced(Backend::dafs(), 4);
    let b = run_traced(Backend::dafs(), 4);
    assert_eq!(a.0, b.0, "virtual end times differ");
    assert_eq!(a.2, b.2, "metrics snapshots differ");
    assert_eq!(a.1, b.1, "trace streams differ");
    // The stream is real: non-empty JSON lines ending in a snapshot record.
    let text = String::from_utf8(a.1).unwrap();
    assert!(text.lines().count() > 10, "suspiciously short trace");
    assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    assert!(text
        .lines()
        .last()
        .unwrap()
        .contains("\"type\":\"snapshot\""));
}

#[test]
fn nfs_traced_runs_emit_byte_identical_streams() {
    let a = run_traced(Backend::nfs(), 3);
    let b = run_traced(Backend::nfs(), 3);
    assert_eq!(a.0, b.0);
    assert_eq!(a.2, b.2);
    assert_eq!(a.1, b.1);
}

#[test]
fn tracing_does_not_perturb_the_timeline() {
    let silent = run_once(Backend::dafs(), 4);
    let traced = run_traced(Backend::dafs(), 4);
    assert_eq!(
        silent.0, traced.0,
        "enabling the trace sink moved the virtual clock"
    );
}

// --- fault-injection determinism --------------------------------------------
//
// A fault plan must not cost the simulation its reproducibility: the same
// seed must replay the same fault timeline (identical traces and metrics),
// and a *different* seed must change only the timeline, never the data.

/// Striped write + read-back under seeded loss and jitter, traced into a
/// buffer. Returns (end ns, trace bytes, snapshot, file bytes).
fn run_faulted(seed: u64) -> (u64, Vec<u8>, Snapshot, Vec<u8>) {
    let plan = FaultPlan::builder(seed).loss(0.05).jitter(us(20)).build();
    let (obs, buf) = Obs::buffered();
    let tb = Testbed::with_obs_and_faults(Backend::dafs(), obs, plan);
    let fs = tb.fs.clone();
    let report = tb.run(2, |ctx, comm, adio| {
        let host = comm.host().clone();
        let f = MpiFile::open(
            ctx,
            adio,
            &host,
            "/fdet",
            OpenMode::create(),
            Hints::default(),
        )
        .unwrap();
        let block = 128 << 10;
        let src = host.mem.alloc(block);
        host.mem.fill(src, block, comm.rank() as u8 + 1);
        f.write_at(ctx, (comm.rank() * block) as u64, src, block as u64)
            .unwrap();
        comm.barrier(ctx);
        let dst = host.mem.alloc(block);
        assert_eq!(
            f.read_at(ctx, (comm.rank() * block) as u64, dst, block as u64)
                .unwrap(),
            block as u64
        );
    });
    let attr = fs.resolve("/fdet").unwrap();
    let bytes = fs.read(attr.id, 0, attr.size).unwrap();
    (
        report.end_time.as_nanos(),
        buf.contents(),
        report.snapshot,
        bytes,
    )
}

#[test]
fn same_fault_seed_replays_identical_timeline() {
    let a = run_faulted(0xFA17);
    let b = run_faulted(0xFA17);
    assert_eq!(a.0, b.0, "virtual end times differ");
    assert_eq!(a.2, b.2, "metrics snapshots differ");
    assert_eq!(a.1, b.1, "trace streams differ");
    assert_eq!(a.3, b.3, "file contents differ");
    // The plan must actually have fired, or the assertions above are vacuous.
    assert!(
        a.2.get("sim.faults.dropped").unwrap().value() > 0,
        "seed 0xFA17 injected nothing"
    );
}

#[test]
fn different_fault_seed_changes_timeline_not_contents() {
    let a = run_faulted(0xFA17);
    let b = run_faulted(0xFA18);
    assert_ne!(
        a.1, b.1,
        "different seeds should produce different fault timelines"
    );
    assert_eq!(
        a.3, b.3,
        "recovery must converge to identical bytes on any timeline"
    );
}

#[test]
fn metrics_collect_even_when_tracing_is_disabled() {
    let tb = Testbed::new(Backend::dafs());
    let report = tb.run(2, |ctx, comm, adio| {
        let host = comm.host().clone();
        let f =
            MpiFile::open(ctx, adio, &host, "/m", OpenMode::create(), Hints::default()).unwrap();
        let src = host.mem.alloc(4096);
        f.write_at(ctx, (comm.rank() * 4096) as u64, src, 4096)
            .unwrap();
    });
    assert!(!report.traced);
    assert!(report.snapshot.get("dafs.ops").unwrap().value() > 0);
    assert!(report.snapshot.get("via.doorbells").is_some());
}
