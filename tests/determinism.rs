//! Determinism: the discrete-event substrate must produce bit-identical
//! virtual timelines for identical programs — the property every number in
//! EXPERIMENTS.md rests on.

use mpio_dafs::mpiio::{write_at_all, Backend, Datatype, Hints, MpiFile, OpenMode, Testbed};
use mpio_dafs::obs::{Obs, Snapshot};
use mpio_dafs::simnet::units::us;
use mpio_dafs::simnet::FaultPlan;

fn run_once(backend: Backend, ranks: usize) -> (u64, u64, Vec<u8>) {
    let tb = Testbed::new(backend);
    let fs = tb.fs.clone();
    let report = tb.run(ranks, move |ctx, comm, adio| {
        let host = comm.host().clone();
        let f = MpiFile::open(
            ctx,
            adio,
            &host,
            "/det",
            OpenMode::create(),
            Hints::default(),
        )
        .unwrap();
        let block = 16 << 10;
        let el = Datatype::bytes(block);
        let ft = Datatype::resized(
            &Datatype::hindexed(&[(1, (comm.rank() as u64 * block) as i64)], &el),
            0,
            ranks as u64 * block,
        );
        f.set_view(0, &el, &ft);
        let src = host.mem.alloc(3 * block as usize);
        host.mem
            .fill(src, 3 * block as usize, comm.rank() as u8 + 1);
        write_at_all(ctx, comm, &f, 0, src, 3 * block).unwrap();
        // Some independent traffic too.
        let dst = host.mem.alloc(block as usize);
        f.read_at(ctx, comm.rank() as u64, dst, block).unwrap();
    });
    let attr = fs.resolve("/det").unwrap();
    let bytes = fs.read(attr.id, 0, attr.size).unwrap();
    (
        report.end_time.as_nanos(),
        report.server_cpu.as_nanos(),
        bytes,
    )
}

#[test]
fn dafs_runs_are_bit_identical() {
    let a = run_once(Backend::dafs(), 4);
    let b = run_once(Backend::dafs(), 4);
    assert_eq!(a.0, b.0, "virtual end times differ");
    assert_eq!(a.1, b.1, "server CPU accounting differs");
    assert_eq!(a.2, b.2, "file contents differ");
}

#[test]
fn nfs_runs_are_bit_identical() {
    let a = run_once(Backend::nfs(), 4);
    let b = run_once(Backend::nfs(), 4);
    assert_eq!((a.0, a.1), (b.0, b.1));
    assert_eq!(a.2, b.2);
}

#[test]
fn rank_count_changes_timeline_not_contents_shape() {
    let two = run_once(Backend::dafs(), 2);
    let four = run_once(Backend::dafs(), 4);
    assert_ne!(two.0, four.0, "different jobs, different timelines");
    // Two-rank file covers 2 blocks per round, four-rank 4.
    assert_eq!(two.2.len(), 3 * 2 * (16 << 10));
    assert_eq!(four.2.len(), 3 * 4 * (16 << 10));
}

#[test]
fn backend_swap_changes_time_not_bytes() {
    let dafs = run_once(Backend::dafs(), 3);
    let nfs = run_once(Backend::nfs(), 3);
    assert_ne!(dafs.0, nfs.0);
    assert_eq!(dafs.2, nfs.2, "same program, same bytes, any backend");
}

// --- observability determinism ---------------------------------------------
//
// The observability layer must be as deterministic as the timeline it
// describes: two identical runs must produce byte-identical trace streams
// and equal metrics snapshots, and turning tracing *on* must not move the
// virtual clock.

/// Same program as [`run_once`], but traced into an in-memory buffer.
/// Returns (end ns, trace bytes, snapshot).
fn run_traced(backend: Backend, ranks: usize) -> (u64, Vec<u8>, Snapshot) {
    let (obs, buf) = Obs::buffered();
    let tb = Testbed::with_obs(backend, obs);
    let report = tb.run(ranks, move |ctx, comm, adio| {
        let host = comm.host().clone();
        let f = MpiFile::open(
            ctx,
            adio,
            &host,
            "/det",
            OpenMode::create(),
            Hints::default(),
        )
        .unwrap();
        let block = 16 << 10;
        let el = Datatype::bytes(block);
        let ft = Datatype::resized(
            &Datatype::hindexed(&[(1, (comm.rank() as u64 * block) as i64)], &el),
            0,
            ranks as u64 * block,
        );
        f.set_view(0, &el, &ft);
        let src = host.mem.alloc(3 * block as usize);
        host.mem
            .fill(src, 3 * block as usize, comm.rank() as u8 + 1);
        write_at_all(ctx, comm, &f, 0, src, 3 * block).unwrap();
        let dst = host.mem.alloc(block as usize);
        f.read_at(ctx, comm.rank() as u64, dst, block).unwrap();
    });
    assert!(report.traced);
    (report.end_time.as_nanos(), buf.contents(), report.snapshot)
}

#[test]
fn traced_runs_emit_byte_identical_streams() {
    let a = run_traced(Backend::dafs(), 4);
    let b = run_traced(Backend::dafs(), 4);
    assert_eq!(a.0, b.0, "virtual end times differ");
    assert_eq!(a.2, b.2, "metrics snapshots differ");
    assert_eq!(a.1, b.1, "trace streams differ");
    // The stream is real: non-empty JSON lines ending in a snapshot record.
    let text = String::from_utf8(a.1).unwrap();
    assert!(text.lines().count() > 10, "suspiciously short trace");
    assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    assert!(text
        .lines()
        .last()
        .unwrap()
        .contains("\"type\":\"snapshot\""));
}

#[test]
fn nfs_traced_runs_emit_byte_identical_streams() {
    let a = run_traced(Backend::nfs(), 3);
    let b = run_traced(Backend::nfs(), 3);
    assert_eq!(a.0, b.0);
    assert_eq!(a.2, b.2);
    assert_eq!(a.1, b.1);
}

#[test]
fn tracing_does_not_perturb_the_timeline() {
    let silent = run_once(Backend::dafs(), 4);
    let traced = run_traced(Backend::dafs(), 4);
    assert_eq!(
        silent.0, traced.0,
        "enabling the trace sink moved the virtual clock"
    );
}

// --- fault-injection determinism --------------------------------------------
//
// A fault plan must not cost the simulation its reproducibility: the same
// seed must replay the same fault timeline (identical traces and metrics),
// and a *different* seed must change only the timeline, never the data.

/// Striped write + read-back under seeded loss and jitter, traced into a
/// buffer. Returns (end ns, trace bytes, snapshot, file bytes).
fn run_faulted(seed: u64) -> (u64, Vec<u8>, Snapshot, Vec<u8>) {
    let plan = FaultPlan::builder(seed).loss(0.05).jitter(us(20)).build();
    let (obs, buf) = Obs::buffered();
    let tb = Testbed::with_obs_and_faults(Backend::dafs(), obs, plan);
    let fs = tb.fs.clone();
    let report = tb.run(2, |ctx, comm, adio| {
        let host = comm.host().clone();
        let f = MpiFile::open(
            ctx,
            adio,
            &host,
            "/fdet",
            OpenMode::create(),
            Hints::default(),
        )
        .unwrap();
        let block = 128 << 10;
        let src = host.mem.alloc(block);
        host.mem.fill(src, block, comm.rank() as u8 + 1);
        f.write_at(ctx, (comm.rank() * block) as u64, src, block as u64)
            .unwrap();
        comm.barrier(ctx);
        let dst = host.mem.alloc(block);
        assert_eq!(
            f.read_at(ctx, (comm.rank() * block) as u64, dst, block as u64)
                .unwrap(),
            block as u64
        );
    });
    let attr = fs.resolve("/fdet").unwrap();
    let bytes = fs.read(attr.id, 0, attr.size).unwrap();
    (
        report.end_time.as_nanos(),
        buf.contents(),
        report.snapshot,
        bytes,
    )
}

#[test]
fn same_fault_seed_replays_identical_timeline() {
    let a = run_faulted(0xFA17);
    let b = run_faulted(0xFA17);
    assert_eq!(a.0, b.0, "virtual end times differ");
    assert_eq!(a.2, b.2, "metrics snapshots differ");
    assert_eq!(a.1, b.1, "trace streams differ");
    assert_eq!(a.3, b.3, "file contents differ");
    // The plan must actually have fired, or the assertions above are vacuous.
    assert!(
        a.2.get("sim.faults.dropped").unwrap().value() > 0,
        "seed 0xFA17 injected nothing"
    );
}

#[test]
fn different_fault_seed_changes_timeline_not_contents() {
    let a = run_faulted(0xFA17);
    let b = run_faulted(0xFA18);
    assert_ne!(
        a.1, b.1,
        "different seeds should produce different fault timelines"
    );
    assert_eq!(
        a.3, b.3,
        "recovery must converge to identical bytes on any timeline"
    );
}

#[test]
fn metrics_collect_even_when_tracing_is_disabled() {
    let tb = Testbed::new(Backend::dafs());
    let report = tb.run(2, |ctx, comm, adio| {
        let host = comm.host().clone();
        let f =
            MpiFile::open(ctx, adio, &host, "/m", OpenMode::create(), Hints::default()).unwrap();
        let src = host.mem.alloc(4096);
        f.write_at(ctx, (comm.rank() * 4096) as u64, src, 4096)
            .unwrap();
    });
    assert!(!report.traced);
    assert!(report.snapshot.get("dafs.ops").unwrap().value() > 0);
    assert!(report.snapshot.get("via.doorbells").is_some());
}

// --- switched-fabric determinism --------------------------------------------
//
// Threading a routed topology under the transports must not cost the
// simulation its reproducibility: identical seeds replay identical
// timelines through switches, trunk failover, and seeded loss — and the
// degenerate one-switch cut-through fabric is *byte-identical in virtual
// time* to the point-to-point wire it replaces.

use mpio_dafs::dafs::{DafsClient, DafsClientConfig, DafsServerCost};
use mpio_dafs::memfs::{MemFs, ROOT_ID};
use mpio_dafs::simnet::topo::{ForwardingMode, QueuePolicy, SwitchConfig, TopologyBuilder};
use mpio_dafs::simnet::units::ms;
use mpio_dafs::simnet::{Cluster, SimDuration, SimKernel, SimTime};
use mpio_dafs::via::ViaFabric;
use std::sync::Arc;

/// Striped write + verified read-back on a switched testbed, traced into a
/// buffer. Returns (end ns, trace bytes, snapshot, piece-file bytes).
fn run_switched(rails: usize, plan: Option<FaultPlan>) -> (u64, Vec<u8>, Snapshot, Vec<u8>) {
    let (obs, buf) = Obs::buffered();
    let tb = Testbed::switched_with(4, 2, 2, rails, obs, plan);
    let pieces = tb.server_fss.clone();
    let report = tb.run(4, |ctx, comm, adio| {
        let host = comm.host().clone();
        let f = MpiFile::open(
            ctx,
            adio,
            &host,
            "/sdet",
            OpenMode::create(),
            Hints::default(),
        )
        .unwrap();
        let block = 128 << 10;
        let src = host.mem.alloc(block);
        host.mem.fill(src, block, comm.rank() as u8 + 1);
        f.write_at(ctx, (comm.rank() * block) as u64, src, block as u64)
            .unwrap();
        comm.barrier(ctx);
        let dst = host.mem.alloc(block);
        assert_eq!(
            f.read_at(ctx, (comm.rank() * block) as u64, dst, block as u64)
                .unwrap(),
            block as u64
        );
    });
    let mut bytes = Vec::new();
    for fs in &pieces {
        if let Ok(attr) = fs.resolve("/sdet") {
            bytes.extend(fs.read(attr.id, 0, attr.size).unwrap());
        }
    }
    assert!(!bytes.is_empty(), "striped write left no piece files");
    (
        report.end_time.as_nanos(),
        buf.contents(),
        report.snapshot,
        bytes,
    )
}

#[test]
fn switched_runs_are_byte_identical() {
    let a = run_switched(1, None);
    let b = run_switched(1, None);
    assert_eq!(a.0, b.0, "virtual end times differ through the switch");
    assert_eq!(a.2, b.2, "metrics snapshots differ through the switch");
    assert_eq!(a.1, b.1, "trace streams differ through the switch");
    assert_eq!(a.3, b.3, "piece files differ through the switch");
    // The fabric actually carried the job.
    assert!(a.2.get("fabric.frames").unwrap().value() > 0);
}

#[test]
fn trunk_failover_replays_bit_identically() {
    // Crash the server leaf's rail-0 pseudo-host for a mid-run window; the
    // per-flow home rails fail over to rail 1 and back. Pseudo-host ids are
    // part of the deterministic host layout, so discover them on a probe
    // testbed and reuse them in the real plans.
    let probe = Testbed::switched_with(4, 2, 2, 2, Obs::buffered().0, None);
    let leaf_srv = probe.topology().unwrap().switch_hosts(0)[0];
    let plan = || {
        FaultPlan::builder(0xFA11_0B37)
            .host_crash(leaf_srv, SimTime::ZERO + ms(1), SimTime::ZERO + ms(400))
            .build()
    };
    let a = run_switched(2, Some(plan()));
    let b = run_switched(2, Some(plan()));
    assert_eq!(a.0, b.0, "virtual end times differ under failover");
    assert_eq!(a.2, b.2, "metrics snapshots differ under failover");
    assert_eq!(a.1, b.1, "trace streams differ under failover");
    assert_eq!(a.3, b.3, "piece files differ under failover");
    assert!(
        a.2.get("fabric.failovers").unwrap().value() > 0,
        "the rail-down window never forced a failover — the test is vacuous"
    );
}

#[test]
fn seeded_loss_through_a_switch_replays_bit_identically() {
    let plan = |seed| FaultPlan::builder(seed).loss(0.03).jitter(us(10)).build();
    let a = run_switched(1, Some(plan(0xFA17_5111)));
    let b = run_switched(1, Some(plan(0xFA17_5111)));
    assert_eq!((a.0, &a.2, &a.1, &a.3), (b.0, &b.2, &b.1, &b.3));
    assert!(
        a.2.get("sim.faults.dropped").unwrap().value() > 0,
        "seed injected nothing"
    );
    let c = run_switched(1, Some(plan(0xFA17_5112)));
    assert_ne!(a.1, c.1, "different seeds should change the fault timeline");
    assert_eq!(a.3, c.3, "recovery must converge to identical bytes");
}

/// Three clients incast-writing to one DAFS server, then reading back.
/// `switched` threads a single cut-through switch whose egress ports run
/// at the wire rate and whose hop latencies sum to the wire latency — the
/// degenerate topology the point-to-point testbeds collapse to.
fn incast_end_ns(switched: bool) -> u64 {
    let kernel = SimKernel::new();
    let cluster = Cluster::new();
    let fabric = Arc::new(ViaFabric::new(mpio_dafs::via::ViaCost::default()));
    let cost = *fabric.cost();
    let server_host = cluster.add_host("server0");
    if switched {
        let mut b = TopologyBuilder::new(&cluster, 1);
        let sw = b.switch(
            "sw0",
            SwitchConfig {
                port_bw: cost.wire_bw,
                queue_capacity: 0,
                pool_bytes: 0,
                mode: ForwardingMode::CutThrough,
                policy: QueuePolicy::Backpressure,
            },
        );
        b.attach(server_host.id, sw, cost.wire_latency);
        b.attach_default(sw, SimDuration::ZERO);
        fabric.set_topology(Arc::new(b.build()));
    }
    let nic = fabric.open_nic(server_host);
    let fs = MemFs::new();
    let _srv = mpio_dafs::dafs::spawn_dafs_server(
        &kernel,
        &fabric,
        nic,
        fs,
        2049,
        DafsServerCost::default(),
    );
    for i in 0..3usize {
        let fabric = fabric.clone();
        let host = cluster.add_host(&format!("client{i}"));
        kernel.spawn(&format!("client{i}"), move |ctx| {
            let nic = fabric.open_nic(host.clone());
            let c = DafsClient::connect(
                ctx,
                &fabric,
                &nic,
                mpio_dafs::simnet::HostId(0),
                2049,
                DafsClientConfig::default(),
            )
            .unwrap();
            let f = c.create(ctx, ROOT_ID, &format!("f{i}")).unwrap();
            let len = 256usize << 10;
            let buf = nic.host().mem.alloc(len);
            host.mem.fill(buf, len, i as u8 + 1);
            let mut off = 0;
            while off < len as u64 {
                c.write(ctx, f.id, off, buf, 64 << 10).unwrap();
                off += 64 << 10;
            }
            let mut off = 0;
            while off < len as u64 {
                assert_eq!(c.read(ctx, f.id, off, buf, 64 << 10).unwrap(), 64 << 10);
                off += 64 << 10;
            }
            c.disconnect(ctx);
        });
    }
    kernel.run().as_nanos()
}

// --- payload aliasing --------------------------------------------------------
//
// The zero-copy payload path shares refcounted `Bytes` views of server
// pages and pooled wire frames instead of copying at every layer. The
// property that makes that safe: a buffer, once published (handed to a
// descriptor, stashed in a reply cache, delivered to a consumer), must
// never change — no matter what the file or the pool does afterwards.

use mpio_dafs::simnet::buf;

/// Deterministic xorshift so the property test needs no rand crate.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[test]
fn published_file_views_survive_later_writes() {
    // memfs hands out refcounted views of its page data; a later write to
    // the same file must copy-on-write, never mutate the published view.
    let fs = MemFs::new();
    let attr = fs.create(ROOT_ID, "cow").unwrap();
    let size = 64usize << 10;
    let base: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
    fs.write(attr.id, 0, &base).unwrap();

    let mut rng = Rng(0x0B0F_5EED);
    let mut published: Vec<(u64, Vec<u8>, buf::Bytes)> = Vec::new();
    for _ in 0..100 {
        let off = rng.next() % (size as u64 - 1);
        let len = 1 + rng.next() % (size as u64 - off);
        let view = fs.read_bytes(attr.id, off, len).unwrap();
        let expect = fs.read(attr.id, off, len).unwrap();
        assert_eq!(view, expect, "view disagrees with copying read");
        published.push((off, expect, view));
        // Overwrite a random overlapping range with fresh bytes.
        let woff = rng.next() % (size as u64);
        let wlen = (1 + rng.next() % 4096).min(size as u64 - woff) as usize;
        let fill = vec![(rng.next() % 256) as u8; wlen];
        fs.write(attr.id, woff, &fill).unwrap();
        // Every previously published view still reads its original bytes.
        for (o, snap, v) in &published {
            assert_eq!(
                v, snap,
                "write at {woff} mutated a view published at offset {o}"
            );
        }
    }
}

#[test]
fn frozen_pool_frames_survive_pool_reuse() {
    // Wire frames come from a recycling pool; freezing one must pin its
    // storage until the last reference drops, no matter how much the pool
    // churns afterwards.
    let mut kept = Vec::new();
    for round in 0..8u8 {
        let len = 1024 + 512 * round as usize;
        let mut frame = buf::frame_pool().alloc(len);
        frame[..len].fill(round + 1);
        kept.push((round, len, frame.freeze()));
        // Churn the pool hard with junk of assorted sizes.
        for i in 0..32usize {
            let mut junk = buf::frame_pool().alloc(256 + i * 64);
            junk[..].fill(0xEE);
            drop(junk.freeze());
        }
        for (r, l, b) in &kept {
            assert_eq!(b.len(), *l);
            assert!(
                b.iter().all(|&x| x == r + 1),
                "pool churn clobbered a frozen frame from round {r}"
            );
        }
    }
}

#[test]
fn subslices_alias_their_parent_without_copying() {
    // slice() must be a view (same backing storage), and equal views must
    // stay independent of the parent's lifetime.
    let parent = buf::Bytes::from_vec((0u16..2048).map(|i| (i % 256) as u8).collect());
    let mid = parent.slice(512..1536);
    assert_eq!(mid.len(), 1024);
    // Zero-cost: the sub-view points into the parent's storage.
    let p = parent.as_slice().as_ptr() as usize;
    let m = mid.as_slice().as_ptr() as usize;
    assert_eq!(m - p, 512, "slice() copied instead of aliasing");
    let of_mid = mid.slice(100..200);
    drop(parent);
    drop(mid);
    // Still valid and correct after every other handle is gone.
    assert_eq!(
        of_mid.as_slice(),
        &(0u16..2048).map(|i| (i % 256) as u8).collect::<Vec<_>>()[612..712]
    );
}

#[test]
fn delivered_read_is_immune_to_concurrent_overwrite() {
    // End to end through the zero-copy read path: a client reads a region
    // while another client overwrites it. Each read request snapshots one
    // refcounted server page view, so the delivered bytes must be all-old
    // or all-new — never a torn mix of the two — even though the server
    // never copies the page into a staging buffer anymore.
    use std::sync::Mutex;
    let kernel = SimKernel::new();
    let cluster = Cluster::new();
    let fabric = Arc::new(ViaFabric::new(mpio_dafs::via::ViaCost::default()));
    let server_host = cluster.add_host("server0");
    let nic = fabric.open_nic(server_host);
    let fs = MemFs::new();
    let len = 64usize << 10; // single direct/RDMA read per request
    {
        let attr = fs.create(ROOT_ID, "shared").unwrap();
        fs.write(attr.id, 0, &vec![0xAAu8; len]).unwrap();
    }
    let _srv = mpio_dafs::dafs::spawn_dafs_server(
        &kernel,
        &fabric,
        nic,
        fs.clone(),
        2049,
        DafsServerCost::default(),
    );
    let got = Arc::new(Mutex::new(Vec::new()));
    {
        let (fabric, got) = (fabric.clone(), got.clone());
        let host = cluster.add_host("reader");
        kernel.spawn("reader", move |ctx| {
            let nic = fabric.open_nic(host.clone());
            let c = DafsClient::connect(
                ctx,
                &fabric,
                &nic,
                mpio_dafs::simnet::HostId(0),
                2049,
                DafsClientConfig::default(),
            )
            .unwrap();
            let f = c.lookup(ctx, ROOT_ID, "shared").unwrap();
            let buf = host.mem.alloc(len);
            assert_eq!(c.read(ctx, f.id, 0, buf, len as u64).unwrap(), len as u64);
            *got.lock().unwrap() = host.mem.read_vec(buf, len);
            c.disconnect(ctx);
        });
    }
    {
        let fabric = fabric.clone();
        let host = cluster.add_host("writer");
        kernel.spawn("writer", move |ctx| {
            let nic = fabric.open_nic(host.clone());
            let c = DafsClient::connect(
                ctx,
                &fabric,
                &nic,
                mpio_dafs::simnet::HostId(0),
                2049,
                DafsClientConfig::default(),
            )
            .unwrap();
            let f = c.lookup(ctx, ROOT_ID, "shared").unwrap();
            let buf = host.mem.alloc(len);
            host.mem.fill(buf, len, 0xBB);
            c.write(ctx, f.id, 0, buf, len as u64).unwrap();
            c.disconnect(ctx);
        });
    }
    kernel.run();
    let got = got.lock().unwrap();
    assert_eq!(got.len(), len);
    assert!(
        got.iter().all(|&b| b == 0xAA) || got.iter().all(|&b| b == 0xBB),
        "torn read: delivered frame mixed old and new bytes"
    );
    let attr = fs.resolve("/shared").unwrap();
    assert!(fs
        .read(attr.id, 0, attr.size)
        .unwrap()
        .iter()
        .all(|&b| b == 0xBB));
}

#[test]
fn one_switch_cut_through_is_byte_identical_to_the_wire() {
    // The structural claim the whole integration rests on: existing
    // point-to-point testbeds are the degenerate one-switch case, exactly
    // — same virtual end time, even under 3-way incast contention.
    assert_eq!(
        incast_end_ns(false),
        incast_end_ns(true),
        "degenerate switch perturbed the timeline"
    );
}
