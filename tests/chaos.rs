//! Chaos suite: the full MPI-IO stack must survive seeded packet loss,
//! link flaps, and a mid-run server crash — completing with byte-identical
//! data and without hanging (every run is checked against a virtual-time
//! deadline; a stuck retry loop would blow far past it).
//!
//! All faults come from a seeded [`FaultPlan`], so every failure here is
//! exactly reproducible: rerun the test and the same messages drop at the
//! same virtual instants.

use mpio_dafs::memfs::ROOT_ID;
use mpio_dafs::mpiio::{
    read_at_all, write_at_all, Backend, Datatype, Hints, JobReport, MpiFile, OpenMode, Testbed,
};
use mpio_dafs::simnet::units::*;
use mpio_dafs::simnet::{ActorCtx, Cluster, FaultPlan, HostId, SimKernel, SimTime};
use mpio_dafs::{dafs, nfsv3, tcpnet, via};

/// The file server is always the first host a [`Testbed`] creates.
const SERVER: HostId = HostId(0);

/// Virtual-time deadline: the fault-free workloads below finish in well
/// under a second of virtual time; recovery adds bounded backoff. Anything
/// past this means a retry loop wedged.
const DEADLINE_NS: u64 = 120 * 1_000_000_000;

/// R-F2-shaped workload on a faulted testbed: every rank writes its slab,
/// barriers, reads it back, and asserts byte-identical contents; afterwards
/// the server filesystem is verified too.
fn faulted_roundtrip(backend: Backend, plan: FaultPlan, ranks: usize, block: usize) -> JobReport {
    let tb = Testbed::with_faults(backend, plan);
    let fs = tb.fs.clone();
    let report = tb.run(ranks, move |ctx, comm, adio| {
        let host = comm.host().clone();
        let f = MpiFile::open(
            ctx,
            adio,
            &host,
            "/chaos",
            OpenMode::create(),
            Hints::default(),
        )
        .unwrap();
        let src = host.mem.alloc(block);
        host.mem.fill(src, block, comm.rank() as u8 + 1);
        f.write_at(ctx, (comm.rank() * block) as u64, src, block as u64)
            .unwrap();
        comm.barrier(ctx);
        let dst = host.mem.alloc(block);
        let n = f
            .read_at(ctx, (comm.rank() * block) as u64, dst, block as u64)
            .unwrap();
        assert_eq!(n, block as u64, "short read under faults");
        assert_eq!(
            host.mem.read_vec(dst, block),
            vec![comm.rank() as u8 + 1; block],
            "rank {} read back corrupt data",
            comm.rank()
        );
    });
    assert!(
        report.end_time.as_nanos() < DEADLINE_NS,
        "virtual-time deadline blown: {} ns (recovery wedged?)",
        report.end_time.as_nanos()
    );
    let attr = fs.resolve("/chaos").unwrap();
    assert_eq!(attr.size, (ranks * block) as u64);
    let data = fs.read(attr.id, 0, attr.size).unwrap();
    for r in 0..ranks {
        assert!(
            data[r * block..(r + 1) * block]
                .iter()
                .all(|&b| b == r as u8 + 1),
            "server holds corrupt bytes for rank {r}"
        );
    }
    report
}

// --- loss ladders -----------------------------------------------------------

#[test]
fn dafs_survives_loss_ladder() {
    for (i, loss) in [0.001, 0.01, 0.05].into_iter().enumerate() {
        let plan = FaultPlan::builder(0xC4A05 + i as u64).loss(loss).build();
        faulted_roundtrip(Backend::dafs(), plan, 2, 256 << 10);
    }
}

#[test]
fn nfs_survives_loss_ladder() {
    for (i, loss) in [0.001, 0.01, 0.05].into_iter().enumerate() {
        let plan = FaultPlan::builder(0x9F5 + i as u64).loss(loss).build();
        faulted_roundtrip(Backend::nfs(), plan, 2, 256 << 10);
    }
}

#[test]
fn heavy_loss_actually_exercises_recovery() {
    // Guard against a silently disarmed fault plan: at 5% loss over a
    // multi-hundred-message run, drops and recovery work must show up.
    let plan = FaultPlan::builder(0xDEAD).loss(0.05).build();
    let dafs = faulted_roundtrip(Backend::dafs(), plan, 2, 512 << 10);
    let plan = FaultPlan::builder(0xDEAD).loss(0.05).build();
    let nfs = faulted_roundtrip(Backend::nfs(), plan, 2, 512 << 10);
    let dropped = |r: &JobReport| {
        r.snapshot
            .get("sim.faults.dropped")
            .map(|e| e.value())
            .unwrap_or(0)
    };
    assert!(dropped(&dafs) > 0, "no DAFS messages dropped at 5% loss");
    assert!(dropped(&nfs) > 0, "no NFS messages dropped at 5% loss");
    assert!(
        dafs.snapshot
            .get("dafs.reconnects")
            .map(|e| e.value())
            .unwrap_or(0)
            > 0,
        "DAFS dropped messages but never reconnected"
    );
    assert!(
        nfs.snapshot
            .get("nfs.retrans")
            .map(|e| e.value())
            .unwrap_or(0)
            > 0,
        "NFS dropped messages but never retransmitted"
    );
}

// --- pipelined collective sweep under faults --------------------------------

/// The double-buffered two-phase sweep keeps a nonblocking filesystem
/// batch in flight across fault windows; its split-phase recovery (fail
/// the batch, rerun synchronously) must land the same bytes the
/// synchronous sweep would. Interleaved rank views force a genuinely
/// multi-phase sweep on both backends.
#[test]
fn pipelined_collective_survives_loss() {
    for (backend, seed) in [(Backend::dafs(), 0x919E_u64), (Backend::nfs(), 0x919F_u64)] {
        for (i, loss) in [0.005, 0.02].into_iter().enumerate() {
            let plan = FaultPlan::builder(seed + i as u64).loss(loss).build();
            let ranks = 2usize;
            let block = 64u64 << 10;
            let tb = Testbed::with_faults(backend.clone(), plan);
            let fs = tb.fs.clone();
            let report = tb.run(ranks, move |ctx, comm, adio| {
                let host = comm.host().clone();
                let mut hints = Hints::default();
                // Small collective buffer: several windows, so batches
                // overlap the exchange while faults fire.
                hints.set("cb_buffer_size", "16384");
                let f =
                    MpiFile::open(ctx, adio, &host, "/coll", OpenMode::create(), hints).unwrap();
                let el = Datatype::bytes(block);
                let ft = Datatype::resized(
                    &Datatype::hindexed(&[(1, (comm.rank() as u64 * block) as i64)], &el),
                    0,
                    ranks as u64 * block,
                );
                f.set_view(0, &el, &ft);
                let src = host.mem.alloc(block as usize);
                host.mem.fill(src, block as usize, comm.rank() as u8 + 1);
                write_at_all(ctx, comm, &f, 0, src, block).unwrap();
                let dst = host.mem.alloc(block as usize);
                let n = read_at_all(ctx, comm, &f, 0, dst, block).unwrap();
                assert_eq!(n, block, "short collective read under faults");
                assert_eq!(
                    host.mem.read_vec(dst, block as usize),
                    vec![comm.rank() as u8 + 1; block as usize],
                    "rank {} collective read back corrupt data",
                    comm.rank()
                );
            });
            assert!(
                report.end_time.as_nanos() < DEADLINE_NS,
                "virtual-time deadline blown at loss {loss}: {} ns",
                report.end_time.as_nanos()
            );
            let attr = fs.resolve("/coll").unwrap();
            assert_eq!(attr.size, ranks as u64 * block);
            let data = fs.read(attr.id, 0, attr.size).unwrap();
            for r in 0..ranks as u64 {
                assert!(
                    data[(r * block) as usize..((r + 1) * block) as usize]
                        .iter()
                        .all(|&b| b == r as u8 + 1),
                    "server holds corrupt bytes for rank {r} at loss {loss}"
                );
            }
        }
    }
}

// --- link flaps -------------------------------------------------------------

fn flap_plan(seed: u64, ranks: usize) -> FaultPlan {
    // Two short outages on every rank↔server link, early in the run.
    let mut b = FaultPlan::builder(seed);
    for r in 1..=ranks {
        let h = HostId(r);
        b = b
            .link_down(SERVER, h, SimTime::ZERO + ms(1), SimTime::ZERO + ms(3))
            .link_down(SERVER, h, SimTime::ZERO + ms(8), SimTime::ZERO + ms(9));
    }
    b.build()
}

#[test]
fn dafs_survives_link_flaps() {
    faulted_roundtrip(Backend::dafs(), flap_plan(0xF1A9, 2), 2, 256 << 10);
}

#[test]
fn nfs_survives_link_flaps() {
    faulted_roundtrip(Backend::nfs(), flap_plan(0xF1A9, 2), 2, 256 << 10);
}

// --- mid-run server crash ---------------------------------------------------

fn crash_plan(seed: u64) -> FaultPlan {
    // The server goes dark 1ms in and comes back at 15ms — mid-workload for
    // both backends. Stable storage (the MemFs) survives; sessions and
    // in-flight RPCs do not.
    FaultPlan::builder(seed)
        .host_crash(SERVER, SimTime::ZERO + ms(1), SimTime::ZERO + ms(15))
        .build()
}

#[test]
fn dafs_survives_server_crash() {
    let report = faulted_roundtrip(Backend::dafs(), crash_plan(0xCA5), 2, 256 << 10);
    assert!(
        report
            .snapshot
            .get("dafs.reconnects")
            .map(|e| e.value())
            .unwrap_or(0)
            > 0,
        "a 14ms server outage must force at least one reconnect"
    );
}

#[test]
fn nfs_survives_server_crash() {
    let report = faulted_roundtrip(Backend::nfs(), crash_plan(0xCA5), 2, 256 << 10);
    assert!(
        report
            .snapshot
            .get("nfs.retrans")
            .map(|e| e.value())
            .unwrap_or(0)
            > 0,
        "a 14ms server outage must force at least one retransmission"
    );
}

// --- exactly-once properties ------------------------------------------------
//
// Retransmission and replay must not double-apply non-idempotent
// operations. These drive the raw protocol clients (below the ADIO layer)
// under seeded loss and check end-state exactness for every seed.

/// Raw NFS client under `plan`; returns the server fs and total retransmits.
fn raw_nfs_run(
    plan: FaultPlan,
    body: impl FnOnce(&ActorCtx, &nfsv3::NfsClient) + Send + 'static,
) -> (mpio_dafs::memfs::MemFs, u64) {
    let kernel = SimKernel::new();
    let cluster = Cluster::new();
    let fabric = tcpnet::TcpFabric::new(tcpnet::TcpCost::default());
    fabric.set_fault_plan(plan);
    let server_host = cluster.add_host("server0");
    let fs = mpio_dafs::memfs::MemFs::new();
    let _server = nfsv3::spawn_nfs_server(
        &kernel,
        &fabric,
        server_host.clone(),
        fs.clone(),
        2049,
        nfsv3::NfsServerCost::default(),
    );
    let client_host = cluster.add_host("client0");
    let sid = server_host.id;
    kernel.spawn("client", move |ctx| {
        let c = nfsv3::NfsClient::mount(
            ctx,
            &fabric,
            &client_host,
            sid,
            2049,
            nfsv3::NfsClientConfig::default(),
        )
        .unwrap();
        body(ctx, &c);
        c.unmount(ctx);
    });
    let obs = kernel.obs().clone();
    let end = kernel.run();
    let retrans = obs
        .snapshot(end.as_nanos())
        .get("nfs.retrans")
        .map(|e| e.value())
        .unwrap_or(0);
    (fs, retrans)
}

#[test]
fn nfs_drc_makes_create_and_remove_exactly_once() {
    // Without the server's duplicate-request cache, a retransmitted CREATE
    // whose first execution succeeded returns Exists, and a retransmitted
    // REMOVE returns NoEnt. With it, every retransmission gets the cached
    // first reply. Sweep seeds so many distinct loss timelines are tried.
    let mut total_retrans = 0;
    for seed in 0..8u64 {
        let plan = FaultPlan::builder(seed).loss(0.05).build();
        let (fs, retrans) = raw_nfs_run(plan, |ctx, c| {
            for i in 0..24 {
                let name = format!("f{i}");
                c.create(ctx, ROOT_ID, &name).unwrap();
            }
            for i in 0..12 {
                let name = format!("f{i}");
                c.remove(ctx, ROOT_ID, &name).unwrap();
            }
        });
        // End state exact: files 12..24 exist, 0..12 do not.
        for i in 0..24 {
            let exists = fs.resolve(&format!("/f{i}")).is_ok();
            assert_eq!(exists, i >= 12, "seed {seed}: f{i} wrong existence");
        }
        total_retrans += retrans;
    }
    assert!(
        total_retrans > 0,
        "no retransmission fired across the whole sweep — the property went untested"
    );
}

#[test]
fn nfs_writes_survive_retransmission_without_corruption() {
    // Build a log from explicit-offset writes chained through the returned
    // attributes. A double-applied or lost write would tear the sequence.
    const REC: usize = 64;
    const N: u64 = 32;
    let mut total_retrans = 0;
    for seed in 0..4u64 {
        let plan = FaultPlan::builder(0xB10C + seed).loss(0.05).build();
        let (fs, retrans) = raw_nfs_run(plan, |ctx, c| {
            let f = c.create(ctx, ROOT_ID, "log").unwrap();
            let mut off = 0;
            for i in 0..N {
                let attr = c.write(ctx, f.id, off, &[i as u8; REC]).unwrap();
                off = attr.size;
            }
        });
        let attr = fs.resolve("/log").unwrap();
        assert_eq!(attr.size, N * REC as u64, "seed {seed}: log length wrong");
        let data = fs.read(attr.id, 0, attr.size).unwrap();
        for i in 0..N {
            assert!(
                data[(i as usize) * REC..(i as usize + 1) * REC]
                    .iter()
                    .all(|&b| b == i as u8),
                "seed {seed}: record {i} torn"
            );
        }
        total_retrans += retrans;
    }
    assert!(total_retrans > 0, "sweep never exercised a retransmission");
}

// --- lease recalls under faults ---------------------------------------------
//
// The lease-coherent client cache adds a new wedge surface: a conflicting
// request parks at the server until every lease holder flushes and acks.
// A crashed holder can never ack, so the server must reclaim its lease —
// whether the crash surfaces while pushing the recall or afterwards, when
// the holder's own ack dies on the wire.

/// Kernel + DAFS server over a VIA fabric with no plan armed yet: the
/// tests add their client hosts first, then install a plan keyed on them.
fn lease_chaos_bed() -> (
    SimKernel,
    via::ViaFabric,
    Cluster,
    HostId,
    mpio_dafs::memfs::MemFs,
) {
    let kernel = SimKernel::new();
    let cluster = Cluster::new();
    let fabric = via::ViaFabric::new(via::ViaCost::default());
    let server_nic = fabric.open_nic(cluster.add_host("server0"));
    let sid = server_nic.host().id;
    let fs = mpio_dafs::memfs::MemFs::new();
    let _server = dafs::spawn_dafs_server(
        &kernel,
        &fabric,
        server_nic,
        fs.clone(),
        2049,
        dafs::DafsServerCost::default(),
    );
    (kernel, fabric, cluster, sid, fs)
}

#[test]
fn dafs_recall_push_to_crashed_holder_reclaims_lease() {
    // The holder buffers one flushed page and one dirty page under a
    // write-back lease, then its host goes dark before any recall fires.
    // The reader's conflicting READ triggers the recall; the push breaks
    // against the dead host, and the server must reclaim on the spot —
    // serving the last *flushed* image, with the unflushed page lost.
    let (kernel, fabric, cluster, sid, fs) = lease_chaos_bed();
    let holder_host = cluster.add_host("holder");
    let reader_host = cluster.add_host("reader");
    let plan = FaultPlan::builder(0x1EA5E)
        .host_crash(
            holder_host.id,
            SimTime::ZERO + ms(4),
            SimTime::ZERO + ms(10_000),
        )
        .build();
    fabric.set_fault_plan(plan);
    fs.create(ROOT_ID, "x").unwrap();
    {
        let fabric = fabric.clone();
        kernel.spawn("holder", move |ctx| {
            let nic = fabric.open_nic(holder_host.clone());
            let cfg = dafs::DafsClientConfig {
                cache_write_back: true,
                ..Default::default()
            };
            let c = dafs::DafsClient::connect(ctx, &fabric, &nic, sid, 2049, cfg).unwrap();
            let f = c.lookup(ctx, ROOT_ID, "x").unwrap();
            let src = nic.host().mem.alloc(4096);
            nic.host().mem.fill(src, 4096, 0x5A);
            c.write_cached(ctx, f.id, 0, src, 4096).unwrap();
            c.cache_sync(ctx).unwrap(); // page 0 on stable storage
            nic.host().mem.fill(src, 4096, 0x77);
            c.write_cached(ctx, f.id, 4096, src, 4096).unwrap(); // dirty forever
                                                                 // No disconnect: the host crashes at ms(4) with the lease held.
        });
    }
    {
        let fabric = fabric.clone();
        kernel.spawn("reader", move |ctx| {
            ctx.advance(ms(5));
            let nic = fabric.open_nic(reader_host.clone());
            let c = dafs::DafsClient::connect(
                ctx,
                &fabric,
                &nic,
                sid,
                2049,
                dafs::DafsClientConfig::default(),
            )
            .unwrap();
            let f = c.lookup(ctx, ROOT_ID, "x").unwrap();
            let got = c.read_to_vec(ctx, f.id, 0, 4096).unwrap();
            assert_eq!(
                got,
                vec![0x5A; 4096],
                "reader must see the holder's last flushed image"
            );
            assert!(
                ctx.now().as_nanos() < ms(20).as_nanos(),
                "recall against a dead holder wedged the reader"
            );
            c.disconnect(ctx);
        });
    }
    let obs = kernel.obs().clone();
    let end = kernel.run();
    let snap = obs.snapshot(end.as_nanos());
    assert!(
        snap.get("dafs.lease.reclaims")
            .map(|e| e.value())
            .unwrap_or(0)
            > 0,
        "server never reclaimed the dead holder's lease"
    );
    // The dirty extension died with the holder: stable storage holds
    // exactly the flushed prefix.
    assert_eq!(fs.resolve("/x").unwrap().size, 4096);
}

#[test]
fn dafs_holder_crash_mid_recall_unblocks_waiter_and_ack_replays_idempotently() {
    // Here the holder *receives* the recall and crashes while its ack is
    // on the wire. The broken ack tears the session down at the server,
    // which must complete the recall (the waiter proceeds at ~ms(6), not
    // at the holder's eventual reconnect); the holder's retried ack after
    // reconnect must land as a harmless no-op.
    let (kernel, fabric, cluster, sid, fs) = lease_chaos_bed();
    let holder_host = cluster.add_host("holder");
    let reader_host = cluster.add_host("reader");
    let plan = FaultPlan::builder(0xACED)
        .host_crash(
            holder_host.id,
            SimTime::ZERO + ms(8),
            SimTime::ZERO + ms(50),
        )
        .build();
    fabric.set_fault_plan(plan);
    fs.create(ROOT_ID, "x").unwrap();
    {
        let fabric = fabric.clone();
        kernel.spawn("holder", move |ctx| {
            let nic = fabric.open_nic(holder_host.clone());
            let cfg = dafs::DafsClientConfig {
                cache_write_back: true,
                ..Default::default()
            };
            let c = dafs::DafsClient::connect(ctx, &fabric, &nic, sid, 2049, cfg).unwrap();
            let f = c.lookup(ctx, ROOT_ID, "x").unwrap();
            let src = nic.host().mem.alloc(4096);
            nic.host().mem.fill(src, 4096, 0x5A);
            c.write_cached(ctx, f.id, 0, src, 4096).unwrap();
            c.cache_sync(ctx).unwrap();
            // The reader's recall push lands shortly after ms(5); service
            // it at ms(9), inside the crash window: the flush is empty and
            // the ack send breaks the session. The client rides its
            // reconnect backoff past ms(50) and replays the ack against a
            // server that already reclaimed the lease — a no-op by design.
            ctx.advance(ms(9));
            let a = c.getattr_cached(ctx, f.id).unwrap();
            assert_eq!(a.size, 4096);
            assert_eq!(c.cache_stats.recalls.get(), 1);
            c.disconnect(ctx);
        });
    }
    {
        let fabric = fabric.clone();
        kernel.spawn("reader", move |ctx| {
            ctx.advance(ms(5));
            let nic = fabric.open_nic(reader_host.clone());
            let c = dafs::DafsClient::connect(
                ctx,
                &fabric,
                &nic,
                sid,
                2049,
                dafs::DafsClientConfig::default(),
            )
            .unwrap();
            let f = c.lookup(ctx, ROOT_ID, "x").unwrap();
            let got = c.read_to_vec(ctx, f.id, 0, 4096).unwrap();
            assert_eq!(got, vec![0x5A; 4096], "waiter must see the flushed image");
            assert!(
                ctx.now().as_nanos() < ms(20).as_nanos(),
                "waiter should be released by the session teardown at ~ms(9), \
                 not the holder's ms(50)+ reconnect"
            );
            c.disconnect(ctx);
        });
    }
    let obs = kernel.obs().clone();
    let end = kernel.run();
    assert!(
        end.as_nanos() < DEADLINE_NS,
        "virtual-time deadline blown: {} ns",
        end.as_nanos()
    );
    let snap = obs.snapshot(end.as_nanos());
    assert!(
        snap.get("dafs.lease.reclaims")
            .map(|e| e.value())
            .unwrap_or(0)
            > 0,
        "teardown never reclaimed the holder's lease"
    );
    assert!(
        snap.get("dafs.reconnects").map(|e| e.value()).unwrap_or(0) > 0,
        "the holder never reconnected — the idempotent-ack replay went untested"
    );
    assert_eq!(fs.resolve("/x").unwrap().size, 4096);
}

/// Raw DAFS client under `plan`; returns the server fs and total reconnects.
fn raw_dafs_run(
    plan: FaultPlan,
    body: impl FnOnce(&ActorCtx, &dafs::DafsClient) + Send + 'static,
) -> (mpio_dafs::memfs::MemFs, u64) {
    let kernel = SimKernel::new();
    let cluster = Cluster::new();
    let fabric = via::ViaFabric::new(via::ViaCost::default());
    fabric.set_fault_plan(plan);
    let server_nic = fabric.open_nic(cluster.add_host("server0"));
    let sid = server_nic.host().id;
    let fs = mpio_dafs::memfs::MemFs::new();
    let _server = dafs::spawn_dafs_server(
        &kernel,
        &fabric,
        server_nic,
        fs.clone(),
        2049,
        dafs::DafsServerCost::default(),
    );
    let client_host = cluster.add_host("client0");
    kernel.spawn("client", move |ctx| {
        let nic = fabric.open_nic(client_host.clone());
        let c = dafs::DafsClient::connect(
            ctx,
            &fabric,
            &nic,
            sid,
            2049,
            dafs::DafsClientConfig::default(),
        )
        .unwrap();
        body(ctx, &c);
        c.disconnect(ctx);
    });
    let obs = kernel.obs().clone();
    let end = kernel.run();
    let reconnects = obs
        .snapshot(end.as_nanos())
        .get("dafs.reconnects")
        .map(|e| e.value())
        .unwrap_or(0);
    (fs, reconnects)
}

#[test]
fn dafs_replay_never_double_applies_appends() {
    // APPEND writes at the server's current EOF, so a replayed execution
    // (rather than a replayed *reply*) would duplicate the record and grow
    // the file. The server replay cache must return the first reply for a
    // retried request id instead of re-running it.
    const REC: usize = 64;
    const N: u64 = 32;
    let mut total_reconnects = 0;
    for seed in 0..8u64 {
        let plan = FaultPlan::builder(0xA99E + seed).loss(0.05).build();
        let (fs, reconnects) = raw_dafs_run(plan, |ctx, c| {
            let f = c.create(ctx, ROOT_ID, "log").unwrap();
            for i in 0..N {
                let off = c.append(ctx, f.id, &[i as u8; REC]).unwrap();
                assert_eq!(off, i * REC as u64, "append landed at the wrong offset");
            }
        });
        let attr = fs.resolve("/log").unwrap();
        assert_eq!(
            attr.size,
            N * REC as u64,
            "seed {seed}: a replayed append double-applied (or one was lost)"
        );
        let data = fs.read(attr.id, 0, attr.size).unwrap();
        for i in 0..N {
            assert!(
                data[(i as usize) * REC..(i as usize + 1) * REC]
                    .iter()
                    .all(|&b| b == i as u8),
                "seed {seed}: record {i} wrong"
            );
        }
        total_reconnects += reconnects;
    }
    assert!(
        total_reconnects > 0,
        "no session ever broke across the sweep — the property went untested"
    );
}

#[test]
fn dafs_server_crash_mid_coalesced_flush_replays_exactly_once() {
    // A write-back holder dirties 64 strided pages and syncs: the
    // coalesced flush ships the run set as a handful of vectored
    // WriteList batches, and the server goes dark after the first few
    // land. The broken batch must fall back through the replayable
    // inline path on reconnect, and every page must land exactly once —
    // no lost runs, no double-applies, holes still zero.
    const PAGE: u64 = 4096;
    const PAGES: u64 = 64;
    let (kernel, fabric, cluster, sid, fs) = lease_chaos_bed();
    let client_host = cluster.add_host("flusher");
    let plan = FaultPlan::builder(0xF1A5)
        .host_crash(sid, SimTime::ZERO + ms(6), SimTime::ZERO + ms(18))
        .build();
    fabric.set_fault_plan(plan);
    fs.create(ROOT_ID, "wb").unwrap();
    {
        let fabric = fabric.clone();
        kernel.spawn("flusher", move |ctx| {
            let nic = fabric.open_nic(client_host.clone());
            let cfg = dafs::DafsClientConfig {
                cache_write_back: true,
                ..Default::default()
            };
            let c = dafs::DafsClient::connect(ctx, &fabric, &nic, sid, 2049, cfg).unwrap();
            let f = c.lookup(ctx, ROOT_ID, "wb").unwrap();
            let src = nic.host().mem.alloc(PAGE as usize);
            for p in 0..PAGES {
                nic.host().mem.fill(src, PAGE as usize, (p % 251) as u8 + 1);
                c.write_cached(ctx, f.id, p * 2 * PAGE, src, PAGE).unwrap();
            }
            // Sync at ms(5): the batches take ~2.5 ms of wire time, so
            // the ms(6) crash lands mid-flush; the reconnect backoff
            // rides out the outage and the remainder replays.
            ctx.advance(ms(5));
            let flushed = c.cache_sync(ctx).unwrap();
            assert_eq!(flushed, PAGES, "every dirty page must flush");
            assert!(
                ctx.now().as_nanos() > ms(18).as_nanos(),
                "flush finished before the crash window — nothing was interrupted"
            );
            // Same-client read-back, cold after revalidate-on-reconnect.
            for p in 0..PAGES {
                let got = c.read_to_vec(ctx, f.id, p * 2 * PAGE, PAGE).unwrap();
                assert_eq!(
                    got,
                    vec![(p % 251) as u8 + 1; PAGE as usize],
                    "page {p} corrupt after replay"
                );
            }
            c.disconnect(ctx);
        });
    }
    let obs = kernel.obs().clone();
    let end = kernel.run();
    assert!(
        end.as_nanos() < DEADLINE_NS,
        "virtual-time deadline blown: {} ns",
        end.as_nanos()
    );
    let snap = obs.snapshot(end.as_nanos());
    assert!(
        snap.get("dafs.reconnects").map(|e| e.value()).unwrap_or(0) > 0,
        "the flusher never reconnected — the mid-flush replay went untested"
    );
    // Stable storage: the full strided image, written pages exact and the
    // holes between them still zero (a replayed run landing at the wrong
    // offset would dirty one).
    let attr = fs.resolve("/wb").unwrap();
    assert_eq!(attr.size, (2 * PAGES - 1) * PAGE);
    let data = fs.read(attr.id, 0, attr.size).unwrap();
    for p in 0..PAGES {
        let lo = (p * 2 * PAGE) as usize;
        assert!(
            data[lo..lo + PAGE as usize]
                .iter()
                .all(|&b| b == (p % 251) as u8 + 1),
            "server holds corrupt bytes for page {p}"
        );
        if p + 1 < PAGES {
            assert!(
                data[lo + PAGE as usize..lo + 2 * PAGE as usize]
                    .iter()
                    .all(|&b| b == 0),
                "hole after page {p} was dirtied by a misplaced replay"
            );
        }
    }
}

// --- switched-fabric chaos ---------------------------------------------------
//
// The fabric layer rides the same ladder: egress saturation, a rail dying
// mid-sweep, and a client crashing behind the switch must all leave the
// surviving sessions intact and the data byte-exact.

use mpio_dafs::simnet::topo::DumbbellSpec;
use mpio_dafs::simnet::Bandwidth;

/// Collective write + verified read-back on a switched testbed with a 4:1
/// oversubscribed trunk: eight ranks incast through a 55 MB/s pipe, so the
/// trunk egress port saturates and backpressure (not loss) absorbs it.
#[test]
fn switch_egress_saturation_survives_collective_write() {
    let tb = Testbed::switched(8, 2, 4);
    let fs = tb.fs.clone();
    let block = 256usize << 10;
    let report = tb.run(8, move |ctx, comm, adio| {
        let host = comm.host().clone();
        let f = MpiFile::open(
            ctx,
            adio,
            &host,
            "/sat",
            OpenMode::create(),
            Hints::default(),
        )
        .unwrap();
        let src = host.mem.alloc(block);
        host.mem.fill(src, block, comm.rank() as u8 + 1);
        write_at_all(
            ctx,
            comm,
            &f,
            (comm.rank() * block) as u64,
            src,
            block as u64,
        )
        .unwrap();
        let dst = host.mem.alloc(block);
        let n = read_at_all(
            ctx,
            comm,
            &f,
            (comm.rank() * block) as u64,
            dst,
            block as u64,
        )
        .unwrap();
        assert_eq!(n, block as u64, "short read through saturated trunk");
        assert_eq!(
            host.mem.read_vec(dst, block),
            vec![comm.rank() as u8 + 1; block],
            "rank {} corrupt read-back through saturated trunk",
            comm.rank()
        );
    });
    assert!(
        report.end_time.as_nanos() < DEADLINE_NS,
        "saturated trunk wedged the collective"
    );
    // The trunk really did saturate — frames waited — and backpressure
    // held: nothing was shed, nobody reconnected.
    let queued = report.snapshot.get("fabric.queued_ns").unwrap().value();
    assert!(
        queued > 0,
        "8-way incast through a 55 MB/s trunk never queued"
    );
    assert!(
        report.snapshot.get("fabric.drops").is_none()
            || report.snapshot.get("fabric.drops").unwrap().value() == 0
    );
    assert!(fs.resolve("/sat").is_ok(), "striped file vanished");
}

/// A trunk rail dies mid-sweep: per-flow home rails fail over to the
/// surviving rail and every byte still reads back exactly.
#[test]
fn mid_sweep_rail_failure_fails_over_with_exact_readback() {
    // Pseudo-host ids are part of the deterministic layout: probe once,
    // then aim the crash window at the client leaf's rail 0.
    let probe = Testbed::switched(4, 2, 1);
    let leaf_cli_r0 = probe.topology().unwrap().switch_hosts(1)[0];
    let plan = FaultPlan::builder(0x0A11_4A11)
        .host_crash(
            leaf_cli_r0,
            SimTime::ZERO + ms(2),
            SimTime::ZERO + ms(10_000),
        )
        .build();
    let tb = Testbed::switched_with(4, 2, 1, 2, mpio_dafs::obs::Obs::from_env(), Some(plan));
    let block = 256usize << 10;
    let report = tb.run(4, move |ctx, comm, adio| {
        let host = comm.host().clone();
        let f = MpiFile::open(
            ctx,
            adio,
            &host,
            "/rail",
            OpenMode::create(),
            Hints::default(),
        )
        .unwrap();
        let src = host.mem.alloc(block);
        host.mem.fill(src, block, comm.rank() as u8 + 1);
        f.write_at(ctx, (comm.rank() * block) as u64, src, block as u64)
            .unwrap();
        comm.barrier(ctx);
        let dst = host.mem.alloc(block);
        assert_eq!(
            f.read_at(ctx, (comm.rank() * block) as u64, dst, block as u64)
                .unwrap(),
            block as u64
        );
        assert_eq!(
            host.mem.read_vec(dst, block),
            vec![comm.rank() as u8 + 1; block],
            "rank {} corrupt read-back across rail failover",
            comm.rank()
        );
    });
    assert!(report.end_time.as_nanos() < DEADLINE_NS, "failover wedged");
    assert!(
        report.snapshot.get("fabric.failovers").unwrap().value() > 0,
        "rail-0 crash window never forced a failover — vacuous run"
    );
}

/// A client crashing behind the switch must not wedge the other sessions
/// sharing the same oversubscribed trunk: its session dies with bounded
/// reconnect attempts, the server moves on, and the survivors' credit
/// windows keep flowing.
#[test]
fn crashed_client_behind_switch_does_not_wedge_other_sessions() {
    let kernel = SimKernel::new();
    let cluster = Cluster::new();
    let fabric = std::sync::Arc::new(via::ViaFabric::new(via::ViaCost::default()));
    let cost = *fabric.cost();
    let server_host = cluster.add_host("server0");
    let topology = std::sync::Arc::new(mpio_dafs::simnet::topo::Topology::dumbbell(
        &cluster,
        &[server_host.id],
        DumbbellSpec {
            port_bw: cost.wire_bw,
            trunk_bw: Bandwidth::mb_per_sec(55),
            latency: cost.wire_latency,
            rails: 1,
            queue_capacity: 64,
            pool_bytes: 0,
            mode: mpio_dafs::simnet::topo::ForwardingMode::CutThrough,
            policy: mpio_dafs::simnet::topo::QueuePolicy::Backpressure,
        },
    ));
    fabric.set_topology(topology.clone());
    let victim = cluster.add_host("client0");
    let plan = FaultPlan::builder(0xDEADC11)
        .host_crash(victim.id, SimTime::ZERO + ms(3), SimTime::ZERO + ms(60_000))
        .build();
    fabric.set_fault_plan(plan);
    let server_nic = fabric.open_nic(server_host);
    let fs = mpio_dafs::memfs::MemFs::new();
    let _server = dafs::spawn_dafs_server(
        &kernel,
        &fabric,
        server_nic,
        fs.clone(),
        2049,
        dafs::DafsServerCost::default(),
    );
    {
        let fabric = fabric.clone();
        kernel.spawn("victim", move |ctx| {
            let nic = fabric.open_nic(victim.clone());
            let c = dafs::DafsClient::connect(
                ctx,
                &fabric,
                &nic,
                SERVER,
                2049,
                dafs::DafsClientConfig::default(),
            )
            .unwrap();
            let f = c.create(ctx, ROOT_ID, "victim").unwrap();
            let buf = nic.host().mem.alloc(64 << 10);
            // Keep writing until the crash at ms(3) kills the session; the
            // retry path must give up with a bounded error, not spin.
            for i in 0..64u64 {
                if c.write(ctx, f.id, i * (64 << 10), buf, 64 << 10).is_err() {
                    break;
                }
            }
            // No disconnect: the session dies holding whatever credits it had.
        });
    }
    for i in 1..4usize {
        let fabric = fabric.clone();
        let host = cluster.add_host(&format!("client{i}"));
        kernel.spawn(&format!("client{i}"), move |ctx| {
            let nic = fabric.open_nic(host.clone());
            let c = dafs::DafsClient::connect(
                ctx,
                &fabric,
                &nic,
                SERVER,
                2049,
                dafs::DafsClientConfig::default(),
            )
            .unwrap();
            let f = c.create(ctx, ROOT_ID, &format!("s{i}")).unwrap();
            let len = 512usize << 10;
            let buf = nic.host().mem.alloc(64 << 10);
            nic.host().mem.fill(buf, 64 << 10, i as u8);
            let mut off = 0u64;
            while off < len as u64 {
                c.write(ctx, f.id, off, buf, 64 << 10).unwrap();
                off += 64 << 10;
            }
            let mut off = 0u64;
            while off < len as u64 {
                assert_eq!(c.read(ctx, f.id, off, buf, 64 << 10).unwrap(), 64 << 10);
                assert_eq!(
                    nic.host().mem.read_vec(buf, 64 << 10),
                    vec![i as u8; 64 << 10],
                    "survivor {i} corrupt read-back at {off}"
                );
                off += 64 << 10;
            }
            c.disconnect(ctx);
            assert!(
                ctx.now().as_nanos() < ms(2_000).as_nanos(),
                "survivor {i} starved behind the dead session"
            );
        });
    }
    let end = kernel.run();
    assert!(
        end.as_nanos() < DEADLINE_NS,
        "dead client wedged the run at {} ns",
        end.as_nanos()
    );
    for i in 1..4usize {
        assert_eq!(
            fs.resolve(&format!("/s{i}")).unwrap().size,
            512 << 10,
            "survivor {i} data incomplete"
        );
    }
}
