//! Property battery for the switched fabric (`simnet::topo`).
//!
//! Seeded randomized topologies and workloads — switch chains with random
//! rail counts, attachment latencies, port rates, queue bounds, and frame
//! schedules — driven straight through [`Topology::deliver`], checking the
//! invariants every transport above the fabric relies on:
//!
//! - **per-flow FIFO**: frames sent in order on one `(src, dst)` flow
//!   arrive in order, on any topology, any forwarding mode, any rail count;
//! - **no loss, no duplication** without a fault plan: under `Backpressure`
//!   every frame is delivered exactly once — each destination's host-facing
//!   port admits exactly the frames (and bytes) sent to it;
//! - **conservation across ports**: total admissions over all egress ports
//!   equal the sum of per-frame path lengths — nothing vanishes or is
//!   double-booked at intermediate hops;
//! - **bounded queues**: observed `qdepth_max` never exceeds the configured
//!   per-port capacity;
//! - under `Drop`, the accounting closes: `delivered + dropped == sent`,
//!   and dropped frames never reach the destination port.
//!
//! Uses the repo's own seeded [`Rng64`] (deterministic, no external
//! property-testing framework), ≥ 100 scenarios per run.

use std::sync::{Arc, Mutex};

use mpio_dafs::simnet::topo::{
    ForwardingMode, QueuePolicy, SwitchConfig, Topology, TopologyBuilder,
};
use mpio_dafs::simnet::units::{ns, us};
use mpio_dafs::simnet::{Bandwidth, Cluster, HostId, Rng64, SimKernel, SimTime};

#[derive(Clone, Copy, Debug)]
struct Frame {
    src: usize,
    dst: usize,
    bytes: u64,
    tx_start: SimTime,
    tx_done: SimTime,
}

struct Scenario {
    topo: Arc<Topology>,
    hosts: Vec<HostId>,
    /// Chain index of each host's switch.
    host_sw: Vec<usize>,
    capacity: usize,
    frames: Vec<Frame>,
}

/// Build a random switch chain with random attachments and a random
/// well-ordered frame schedule.
fn gen_scenario(rng: &mut Rng64, policy: QueuePolicy) -> Scenario {
    let cluster = Cluster::new();
    let switches = rng.range_usize(1, 4);
    let rails = rng.range_usize(1, 4);
    let capacity = match policy {
        QueuePolicy::Backpressure => rng.range_usize(2, 9),
        QueuePolicy::Drop => rng.range_usize(1, 4),
    };
    let mode = if rng.chance(0.5) {
        ForwardingMode::CutThrough
    } else {
        ForwardingMode::StoreAndForward
    };
    let cfg = SwitchConfig {
        port_bw: Bandwidth::mb_per_sec(rng.range(50, 200)),
        queue_capacity: capacity,
        pool_bytes: 0,
        mode,
        policy,
    };
    let mut b = TopologyBuilder::new(&cluster, rails);
    let refs: Vec<_> = (0..switches)
        .map(|i| b.switch(&format!("sw{i}"), cfg))
        .collect();
    for w in refs.windows(2) {
        b.trunk(
            w[0],
            w[1],
            Bandwidth::mb_per_sec(rng.range(30, 150)),
            us(rng.range(1, 10)),
        );
    }
    let nhosts = rng.range_usize(2, 7);
    let mut hosts = Vec::new();
    let mut host_sw = Vec::new();
    for h in 0..nhosts {
        let sw = rng.range_usize(0, switches);
        let id = cluster.add_host(&format!("h{h}")).id;
        b.attach(id, refs[sw], us(rng.range(1, 5)));
        hosts.push(id);
        host_sw.push(sw);
    }
    let topo = Arc::new(b.build());

    // A well-ordered schedule: globally non-decreasing tx_start (hence
    // non-decreasing within every flow).
    let nic_bw = Bandwidth::mb_per_sec(100);
    let mut t = SimTime::ZERO;
    let mut frames = Vec::new();
    for _ in 0..rng.range_usize(30, 81) {
        t += ns(rng.below(100_000));
        let src = rng.range_usize(0, nhosts);
        let mut dst = rng.range_usize(0, nhosts);
        while dst == src {
            dst = rng.range_usize(0, nhosts);
        }
        let bytes = rng.range(1, 256 << 10);
        frames.push(Frame {
            src,
            dst,
            bytes,
            tx_start: t,
            tx_done: t + nic_bw.time_for(bytes),
        });
    }
    Scenario {
        topo,
        hosts,
        host_sw,
        capacity,
        frames,
    }
}

/// Push every frame through `deliver` in schedule order from one actor.
/// Returns per-frame `Ok(first-bit arrival ns)` / `Err(())`.
fn run_scenario(sc: &Scenario) -> Vec<Result<u64, ()>> {
    let results: Arc<Mutex<Vec<Result<u64, ()>>>> = Arc::new(Mutex::new(Vec::new()));
    let kernel = SimKernel::new();
    let (topo, hosts, frames, out) = (
        sc.topo.clone(),
        sc.hosts.clone(),
        sc.frames.clone(),
        results.clone(),
    );
    kernel.spawn("driver", move |ctx| {
        let mut res = Vec::new();
        for f in &frames {
            res.push(
                topo.deliver(
                    ctx,
                    None,
                    hosts[f.src],
                    hosts[f.dst],
                    f.bytes,
                    f.tx_start,
                    f.tx_done,
                )
                .map(|at| at.as_nanos())
                .map_err(|_| ()),
            );
        }
        *out.lock().unwrap() = res;
    });
    kernel.run();
    let out = results.lock().unwrap().clone();
    out
}

/// Shared invariant checks; returns (delivered, dropped) counts.
fn check_invariants(sc: &Scenario, results: &[Result<u64, ()>]) -> (u64, u64) {
    assert_eq!(results.len(), sc.frames.len());

    // Per-flow FIFO: arrival order matches send order on every flow.
    let mut last: std::collections::HashMap<(usize, usize), u64> = Default::default();
    for (f, r) in sc.frames.iter().zip(results) {
        if let Ok(at) = r {
            let prev = last.entry((f.src, f.dst)).or_insert(0);
            assert!(
                *at >= *prev,
                "flow h{}→h{} reordered: arrival {at} after {prev}",
                f.src,
                f.dst
            );
            *prev = *at;
        }
    }

    let stats = sc.topo.port_stats();
    let mut dropped = 0u64;
    for p in &stats {
        assert!(
            p.qdepth_max <= sc.capacity as u64,
            "{}.r{}.{}: queue depth {} exceeds capacity {}",
            p.switch,
            p.rail,
            p.port,
            p.qdepth_max,
            sc.capacity
        );
        dropped += p.drops;
    }

    // Exactly-once at the destination: each host-facing port admits the
    // delivered frames/bytes for that destination, nothing more.
    for (h, &id) in sc.hosts.iter().enumerate() {
        let label = format!("to_h{}", id.0);
        let (mut pf, mut pb) = (0u64, 0u64);
        for p in stats.iter().filter(|p| p.port == label) {
            pf += p.frames;
            pb += p.bytes;
        }
        let (mut sf, mut sb) = (0u64, 0u64);
        for (f, r) in sc.frames.iter().zip(results) {
            if f.dst == h && r.is_ok() {
                sf += 1;
                sb += f.bytes;
            }
        }
        assert_eq!(pf, sf, "h{h}: delivered-frame count diverges at its port");
        assert_eq!(pb, sb, "h{h}: delivered-byte count diverges at its port");
    }

    (results.iter().filter(|r| r.is_ok()).count() as u64, dropped)
}

#[test]
fn backpressure_delivers_every_frame_exactly_once() {
    let mut rng = Rng64::new(0xFAB0_0001);
    for case in 0..60 {
        let sc = gen_scenario(&mut rng, QueuePolicy::Backpressure);
        let results = run_scenario(&sc);
        assert!(
            results.iter().all(|r| r.is_ok()),
            "case {case}: backpressure lost a frame with no fault plan"
        );
        let (delivered, dropped) = check_invariants(&sc, &results);
        assert_eq!(delivered, sc.frames.len() as u64, "case {case}");
        assert_eq!(dropped, 0, "case {case}: phantom drops under backpressure");

        // Full-path conservation: admissions across every egress port sum
        // to the per-frame chain path lengths (|Δswitch| trunk hops + the
        // destination's host port).
        let total: u64 = sc.topo.port_stats().iter().map(|p| p.frames).sum();
        let expect: u64 = sc
            .frames
            .iter()
            .map(|f| (sc.host_sw[f.src].abs_diff(sc.host_sw[f.dst]) + 1) as u64)
            .sum();
        assert_eq!(
            total, expect,
            "case {case}: frames vanished or were double-booked mid-path"
        );
    }
}

#[test]
fn drop_policy_accounting_closes() {
    let mut rng = Rng64::new(0xFAB0_0002);
    let mut total_drops = 0u64;
    for case in 0..60 {
        let sc = gen_scenario(&mut rng, QueuePolicy::Drop);
        let results = run_scenario(&sc);
        let (delivered, dropped) = check_invariants(&sc, &results);
        assert_eq!(
            delivered + dropped,
            sc.frames.len() as u64,
            "case {case}: delivered + dropped must equal sent"
        );
        assert_eq!(
            dropped,
            results.iter().filter(|r| r.is_err()).count() as u64,
            "case {case}: per-port drop counters disagree with deliver() errors"
        );
        total_drops += dropped;
    }
    assert!(
        total_drops > 0,
        "60 shallow-queue scenarios shed nothing — the generator lost its teeth"
    );
}

#[test]
fn identical_seeds_build_identical_fabrics() {
    // The generator itself is part of the battery's determinism story:
    // same seed, same topology, same schedule, same results and counters.
    let (mut r1, mut r2) = (Rng64::new(0xFAB0_0003), Rng64::new(0xFAB0_0003));
    for _ in 0..5 {
        let s1 = gen_scenario(&mut r1, QueuePolicy::Backpressure);
        let s2 = gen_scenario(&mut r2, QueuePolicy::Backpressure);
        let o1 = run_scenario(&s1);
        let o2 = run_scenario(&s2);
        assert_eq!(o1, o2, "same seed diverged");
        let p1: Vec<_> = s1
            .topo
            .port_stats()
            .iter()
            .map(|p| (p.switch.clone(), p.rail, p.port.clone(), p.frames, p.bytes))
            .collect();
        let p2: Vec<_> = s2
            .topo
            .port_stats()
            .iter()
            .map(|p| (p.switch.clone(), p.rail, p.port.clone(), p.frames, p.bytes))
            .collect();
        assert_eq!(p1, p2, "same seed, different port counters");
    }
}
