//! Property-style tests on the core invariants: datatype flattening, view
//! translation, the in-memory filesystem, and end-to-end parallel-write
//! correctness.
//!
//! Inputs are generated with the in-tree deterministic PRNG
//! ([`simnet::Rng64`]) instead of an external property-testing framework:
//! every run explores exactly the same cases, so a failure seed is the test
//! name itself.

use mpio_dafs::memfs::{MemFs, ROOT_ID};
use mpio_dafs::mpiio::FileView;
use mpio_dafs::mpiio::{
    read_at_all, write_at_all, Backend, Datatype, Hints, MpiFile, OpenMode, Testbed,
};
use mpio_dafs::simnet::Rng64;

// ---------------------------------------------------------------------------
// Datatype algebra
// ---------------------------------------------------------------------------

/// A small random datatype, recursing up to `depth` constructor levels.
fn gen_datatype(rng: &mut Rng64, depth: u32) -> Datatype {
    if depth == 0 {
        return Datatype::bytes(rng.range(1, 16));
    }
    match rng.below(5) {
        0 => Datatype::bytes(rng.range(1, 16)),
        1 => {
            let inner = gen_datatype(rng, depth - 1);
            Datatype::contiguous(rng.range(1, 4), &inner)
        }
        2 => {
            let inner = gen_datatype(rng, depth - 1);
            let c = rng.range(1, 4);
            let b = rng.range(1, 3);
            let extra = rng.below(6) as i64;
            // stride >= blocklen keeps lb at 0 and runs forward.
            Datatype::vector(c, b, b as i64 + extra, &inner)
        }
        3 => {
            let inner = gen_datatype(rng, depth - 1);
            let blocks: Vec<(u64, i64)> = (0..rng.range(1, 4))
                .map(|_| (rng.range(1, 3), rng.below(8) as i64))
                .collect();
            Datatype::indexed(&blocks, &inner)
        }
        _ => {
            let inner = gen_datatype(rng, depth - 1);
            let ext = inner.extent();
            Datatype::resized(&inner, 0, ext + rng.below(8))
        }
    }
}

/// flatten() == type_map() with adjacent runs merged; size is the sum.
#[test]
fn flatten_matches_merged_typemap() {
    let mut rng = Rng64::new(0xDA7A_0001);
    for _ in 0..128 {
        let dt = gen_datatype(&mut rng, 3);
        let f = dt.flatten();
        let tm = dt.type_map();
        let mut merged: Vec<(i64, u64)> = Vec::new();
        for (off, len) in tm {
            match merged.last_mut() {
                Some((lo, ll)) if *lo + *ll as i64 == off => *ll += len,
                _ => merged.push((off, len)),
            }
        }
        assert_eq!(&f.runs, &merged, "datatype {dt:?}");
        assert_eq!(f.size, merged.iter().map(|r| r.1).sum::<u64>());
        // Note: runs need NOT fit inside [lb, lb+extent) — a Resized type
        // may legally shrink the extent below the data span (overlapping
        // tiling). Only the natural (non-resized) bound is universal:
        if f.size > 0 {
            assert!(f.extent > 0, "nonempty type with zero extent: {dt:?}");
        }
    }
}

/// Tiling property: contiguous(2, dt) == dt runs followed by dt runs
/// shifted by the extent.
#[test]
fn contiguous_two_is_shifted_self() {
    let mut rng = Rng64::new(0xDA7A_0002);
    for _ in 0..128 {
        let dt = gen_datatype(&mut rng, 3);
        let two = Datatype::contiguous(2, &dt).flatten();
        let one = dt.flatten();
        let mut expect = one.runs.clone();
        for (off, len) in &one.runs {
            let shifted = (*off + one.extent as i64, *len);
            match expect.last_mut() {
                Some((lo, ll)) if *lo + *ll as i64 == shifted.0 => *ll += shifted.1,
                _ => expect.push(shifted),
            }
        }
        assert_eq!(two.runs, expect, "datatype {dt:?}");
    }
}

// ---------------------------------------------------------------------------
// View translation
// ---------------------------------------------------------------------------

/// Reference implementation: map one logical byte at a time.
fn naive_map(view: &FileView, logical: u64, len: u64) -> Vec<u64> {
    (logical..logical + len)
        .map(|l| {
            let r = view.map(l, 1);
            assert_eq!(r.len(), 1);
            assert_eq!(r[0].1, 1);
            r[0].0
        })
        .collect()
}

/// map(l, n) must equal n single-byte mappings, in order, and the physical
/// bytes of distinct logical bytes must be distinct.
#[test]
fn view_map_agrees_with_bytewise() {
    let mut rng = Rng64::new(0xDA7A_0003);
    for _ in 0..64 {
        let disp = rng.below(64);
        let take = rng.range(1, 12);
        let skip = rng.below(12);
        let logical = rng.below(64);
        let len = rng.range(1, 48);
        let ft = Datatype::resized(&Datatype::bytes(take), 0, take + skip);
        let view = FileView::new(disp, &Datatype::bytes(1), &ft);
        let ranges = view.map(logical, len);
        let flat: Vec<u64> = ranges.iter().flat_map(|(off, l)| *off..*off + *l).collect();
        let naive = naive_map(&view, logical, len);
        assert_eq!(&flat, &naive, "disp={disp} take={take} skip={skip}");
        assert_eq!(flat.len() as u64, len);
        // Injectivity.
        let mut sorted = flat.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len() as u64, len);
    }
}

/// Disjoint rank views tile the file: the union of all ranks' physical
/// bytes for the same logical range is disjoint.
#[test]
fn rank_views_partition_disjointly() {
    let mut rng = Rng64::new(0xDA7A_0004);
    for _ in 0..64 {
        let ranks = rng.range_usize(2, 5);
        let block = rng.range(1, 16);
        let len = rng.range(1, 64);
        let mut seen = std::collections::HashSet::new();
        for r in 0..ranks {
            let el = Datatype::bytes(block);
            let ft = Datatype::resized(
                &Datatype::hindexed(&[(1, (r as u64 * block) as i64)], &el),
                0,
                ranks as u64 * block,
            );
            let view = FileView::new(0, &Datatype::bytes(1), &ft);
            for (off, l) in view.map(0, len) {
                for b in off..off + l {
                    assert!(seen.insert(b), "byte {b} claimed twice");
                }
            }
        }
        assert_eq!(seen.len() as u64, ranks as u64 * len);
    }
}

// ---------------------------------------------------------------------------
// Filesystem model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum FsOp {
    Write { off: u64, data: Vec<u8> },
    Truncate { size: u64 },
    Read { off: u64, len: u64 },
}

fn gen_fsop(rng: &mut Rng64) -> FsOp {
    match rng.below(3) {
        0 => {
            let off = rng.below(512);
            let len = rng.range_usize(1, 64);
            FsOp::Write {
                off,
                data: rng.bytes(len),
            }
        }
        1 => FsOp::Truncate {
            size: rng.below(600),
        },
        _ => FsOp::Read {
            off: rng.below(600),
            len: rng.below(128),
        },
    }
}

/// memfs agrees with a Vec<u8> reference model under random op sequences.
#[test]
fn memfs_matches_reference_model() {
    let mut rng = Rng64::new(0xDA7A_0005);
    for case in 0..128 {
        let fs = MemFs::new();
        let f = fs.create(ROOT_ID, "model").unwrap();
        let mut model: Vec<u8> = Vec::new();
        for _ in 0..rng.range_usize(1, 40) {
            let op = gen_fsop(&mut rng);
            match op {
                FsOp::Write { off, data } => {
                    fs.write(f.id, off, &data).unwrap();
                    let end = off as usize + data.len();
                    if end > model.len() {
                        model.resize(end, 0);
                    }
                    model[off as usize..end].copy_from_slice(&data);
                }
                FsOp::Truncate { size } => {
                    fs.setattr(f.id, mpio_dafs::memfs::SetAttr { size: Some(size) })
                        .unwrap();
                    model.resize(size as usize, 0);
                }
                FsOp::Read { off, len } => {
                    let got = fs.read(f.id, off, len).unwrap();
                    let s = (off as usize).min(model.len());
                    let e = ((off + len) as usize).min(model.len());
                    assert_eq!(&got, &model[s..e], "case {case}");
                }
            }
            assert_eq!(fs.getattr(f.id).unwrap().size, model.len() as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// End-to-end parallel write
// ---------------------------------------------------------------------------

/// The pipelined double-buffered sweep (the default) lands exactly the
/// same bytes as the strictly synchronous sweep
/// (`romio_cb_pipeline=disable`), for random strided geometries on every
/// backend — and collective reads return the written data in both modes.
#[test]
fn pipelined_collective_matches_synchronous() {
    let mut rng = Rng64::new(0xDA7A_0007);
    for case in 0..6 {
        let ranks = rng.range_usize(2, 5);
        let block = rng.range(1, 9) * 512;
        let rounds = rng.range_usize(1, 4);
        let mut images: Vec<Vec<u8>> = Vec::new();
        for pipeline in ["disable", "enable"] {
            let backend = match case % 3 {
                0 => Backend::dafs(),
                1 => Backend::nfs(),
                _ => Backend::ufs(),
            };
            let tb = Testbed::new(backend);
            let fs = tb.fs.clone();
            tb.run(ranks, move |ctx, comm, adio| {
                let host = comm.host().clone();
                let mut hints = Hints::default();
                // A small collective buffer forces a multi-phase sweep,
                // so the pipeline actually has windows to overlap.
                hints.set("cb_buffer_size", "4096");
                hints.set("romio_cb_pipeline", pipeline);
                let f = MpiFile::open(ctx, adio, &host, "/eq", OpenMode::create(), hints).unwrap();
                let el = Datatype::bytes(block);
                let ft = Datatype::resized(
                    &Datatype::hindexed(&[(1, (comm.rank() as u64 * block) as i64)], &el),
                    0,
                    ranks as u64 * block,
                );
                f.set_view(0, &el, &ft);
                let total = rounds as u64 * block;
                let src = host.mem.alloc(total as usize);
                for round in 0..rounds {
                    host.mem.fill(
                        src.offset(round as u64 * block),
                        block as usize,
                        (comm.rank() * rounds + round + 1) as u8,
                    );
                }
                write_at_all(ctx, comm, &f, 0, src, total).unwrap();
                // Read it back collectively: must see exactly what we wrote.
                let dst = host.mem.alloc(total as usize);
                let n = read_at_all(ctx, comm, &f, 0, dst, total).unwrap();
                assert_eq!(n, total);
                assert_eq!(
                    host.mem.read_vec(dst, total as usize),
                    host.mem.read_vec(src, total as usize),
                    "collective read-back mismatch (pipeline={pipeline})"
                );
            });
            let attr = fs.resolve("/eq").unwrap();
            images.push(fs.read(attr.id, 0, attr.size).unwrap());
        }
        assert_eq!(
            images[0], images[1],
            "case {case}: pipelined file differs from synchronous"
        );
    }
}

/// Collective interleaved writes through the full DAFS stack equal the
/// analytically constructed file, for random block sizes / rounds / rank
/// counts. Whole-cluster simulations are comparatively expensive; a few
/// cases with random geometry still cover the interesting interleavings.
#[test]
fn collective_write_equals_reference() {
    let mut rng = Rng64::new(0xDA7A_0006);
    for _ in 0..6 {
        let ranks = rng.range_usize(2, 5);
        let block = rng.range(1, 9) * 1024;
        let rounds = rng.range_usize(1, 4);
        let tb = Testbed::new(Backend::dafs());
        let fs = tb.fs.clone();
        tb.run(ranks, move |ctx, comm, adio| {
            let host = comm.host().clone();
            let f = MpiFile::open(ctx, adio, &host, "/p", OpenMode::create(), Hints::default())
                .unwrap();
            let el = Datatype::bytes(block);
            let ft = Datatype::resized(
                &Datatype::hindexed(&[(1, (comm.rank() as u64 * block) as i64)], &el),
                0,
                ranks as u64 * block,
            );
            f.set_view(0, &el, &ft);
            let src = host.mem.alloc((rounds as u64 * block) as usize);
            for round in 0..rounds {
                host.mem.fill(
                    src.offset(round as u64 * block),
                    block as usize,
                    (comm.rank() * rounds + round + 1) as u8,
                );
            }
            write_at_all(ctx, comm, &f, 0, src, rounds as u64 * block).unwrap();
        });
        let attr = fs.resolve("/p").unwrap();
        assert_eq!(attr.size, rounds as u64 * ranks as u64 * block);
        let data = fs.read(attr.id, 0, attr.size).unwrap();
        for round in 0..rounds {
            for r in 0..ranks {
                let start = (round * ranks + r) as u64 * block;
                let expect = (r * rounds + round + 1) as u8;
                assert!(
                    data[start as usize..(start + block) as usize]
                        .iter()
                        .all(|&b| b == expect),
                    "round {round} rank {r}"
                );
            }
        }
    }
}
