//! Property-based tests (proptest) on the core invariants:
//! datatype flattening, view translation, the in-memory filesystem, the
//! VIA queue discipline, and end-to-end parallel-write correctness.

use mpio_dafs::memfs::{MemFs, ROOT_ID};
use mpio_dafs::mpiio::{write_at_all, Backend, Datatype, Hints, MpiFile, OpenMode, Testbed};
use mpio_dafs::mpiio::FileView;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Datatype algebra
// ---------------------------------------------------------------------------

/// A recursive strategy for small random datatypes.
fn arb_datatype() -> impl Strategy<Value = Datatype> {
    let leaf = (1u64..16).prop_map(Datatype::bytes);
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (1u64..4, inner.clone()).prop_map(|(c, d)| Datatype::contiguous(c, &d)),
            (1u64..4, 1u64..3, 0i64..6, inner.clone()).prop_map(|(c, b, extra, d)| {
                // stride >= blocklen keeps lb at 0 and runs forward.
                Datatype::vector(c, b, b as i64 + extra, &d)
            }),
            (proptest::collection::vec((1u64..3, 0i64..8), 1..4), inner.clone())
                .prop_map(|(blocks, d)| Datatype::indexed(&blocks, &d)),
            (inner.clone(), 0u64..8).prop_map(|(d, pad)| {
                let ext = d.extent();
                Datatype::resized(&d, 0, ext + pad)
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// flatten() == type_map() with adjacent runs merged; size is the sum.
    #[test]
    fn flatten_matches_merged_typemap(dt in arb_datatype()) {
        let f = dt.flatten();
        let tm = dt.type_map();
        let mut merged: Vec<(i64, u64)> = Vec::new();
        for (off, len) in tm {
            match merged.last_mut() {
                Some((lo, ll)) if *lo + *ll as i64 == off => *ll += len,
                _ => merged.push((off, len)),
            }
        }
        prop_assert_eq!(&f.runs, &merged);
        prop_assert_eq!(f.size, merged.iter().map(|r| r.1).sum::<u64>());
        // Note: runs need NOT fit inside [lb, lb+extent) — a Resized type
        // may legally shrink the extent below the data span (overlapping
        // tiling). Only the natural (non-resized) bound is universal:
        if f.size > 0 {
            prop_assert!(f.extent > 0, "nonempty type with zero extent");
        }
    }

    /// Tiling property: contiguous(2, dt) == dt runs followed by dt runs
    /// shifted by the extent.
    #[test]
    fn contiguous_two_is_shifted_self(dt in arb_datatype()) {
        let two = Datatype::contiguous(2, &dt).flatten();
        let one = dt.flatten();
        let mut expect = one.runs.clone();
        for (off, len) in &one.runs {
            let shifted = (*off + one.extent as i64, *len);
            match expect.last_mut() {
                Some((lo, ll)) if *lo + *ll as i64 == shifted.0 => *ll += shifted.1,
                _ => expect.push(shifted),
            }
        }
        prop_assert_eq!(two.runs, expect);
    }
}

// ---------------------------------------------------------------------------
// View translation
// ---------------------------------------------------------------------------

/// Reference implementation: map one logical byte at a time.
fn naive_map(view: &FileView, logical: u64, len: u64) -> Vec<u64> {
    (logical..logical + len)
        .map(|l| {
            let r = view.map(l, 1);
            assert_eq!(r.len(), 1);
            assert_eq!(r[0].1, 1);
            r[0].0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// map(l, n) must equal n single-byte mappings, in order, and the
    /// physical bytes of distinct logical bytes must be distinct.
    #[test]
    fn view_map_agrees_with_bytewise(
        disp in 0u64..64,
        take in 1u64..12,
        skip in 0u64..12,
        logical in 0u64..64,
        len in 1u64..48,
    ) {
        let ft = Datatype::resized(&Datatype::bytes(take), 0, take + skip);
        let view = FileView::new(disp, &Datatype::bytes(1), &ft);
        let ranges = view.map(logical, len);
        let flat: Vec<u64> = ranges
            .iter()
            .flat_map(|(off, l)| *off..*off + *l)
            .collect();
        let naive = naive_map(&view, logical, len);
        prop_assert_eq!(&flat, &naive);
        prop_assert_eq!(flat.len() as u64, len);
        // Injectivity.
        let mut sorted = flat.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len() as u64, len);
    }

    /// Disjoint rank views tile the file: the union of all ranks' physical
    /// bytes for the same logical range is disjoint.
    #[test]
    fn rank_views_partition_disjointly(
        ranks in 2usize..5,
        block in 1u64..16,
        len in 1u64..64,
    ) {
        let mut seen = std::collections::HashSet::new();
        for r in 0..ranks {
            let el = Datatype::bytes(block);
            let ft = Datatype::resized(
                &Datatype::hindexed(&[(1, (r as u64 * block) as i64)], &el),
                0,
                ranks as u64 * block,
            );
            let view = FileView::new(0, &Datatype::bytes(1), &ft);
            for (off, l) in view.map(0, len) {
                for b in off..off + l {
                    prop_assert!(seen.insert(b), "byte {b} claimed twice");
                }
            }
        }
        prop_assert_eq!(seen.len() as u64, ranks as u64 * len);
    }
}

// ---------------------------------------------------------------------------
// Filesystem model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum FsOp {
    Write { off: u64, data: Vec<u8> },
    Truncate { size: u64 },
    Read { off: u64, len: u64 },
}

fn arb_fsop() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        (0u64..512, proptest::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(off, data)| FsOp::Write { off, data }),
        (0u64..600).prop_map(|size| FsOp::Truncate { size }),
        (0u64..600, 0u64..128).prop_map(|(off, len)| FsOp::Read { off, len }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// memfs agrees with a Vec<u8> reference model under random op
    /// sequences.
    #[test]
    fn memfs_matches_reference_model(ops in proptest::collection::vec(arb_fsop(), 1..40)) {
        let fs = MemFs::new();
        let f = fs.create(ROOT_ID, "model").unwrap();
        let mut model: Vec<u8> = Vec::new();
        for op in ops {
            match op {
                FsOp::Write { off, data } => {
                    fs.write(f.id, off, &data).unwrap();
                    let end = off as usize + data.len();
                    if end > model.len() {
                        model.resize(end, 0);
                    }
                    model[off as usize..end].copy_from_slice(&data);
                }
                FsOp::Truncate { size } => {
                    fs.setattr(f.id, mpio_dafs::memfs::SetAttr { size: Some(size) }).unwrap();
                    model.resize(size as usize, 0);
                }
                FsOp::Read { off, len } => {
                    let got = fs.read(f.id, off, len).unwrap();
                    let s = (off as usize).min(model.len());
                    let e = ((off + len) as usize).min(model.len());
                    prop_assert_eq!(&got, &model[s..e]);
                }
            }
            prop_assert_eq!(fs.getattr(f.id).unwrap().size, model.len() as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// End-to-end parallel write
// ---------------------------------------------------------------------------

proptest! {
    // Whole-cluster simulations are comparatively expensive; a few cases
    // with random geometry still cover the interesting interleavings.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Collective interleaved writes through the full DAFS stack equal the
    /// analytically constructed file, for random block sizes / rounds /
    /// rank counts.
    #[test]
    fn collective_write_equals_reference(
        ranks in 2usize..5,
        block_kb in 1u64..9,
        rounds in 1usize..4,
    ) {
        let block = block_kb * 1024;
        let tb = Testbed::new(Backend::dafs());
        let fs = tb.fs.clone();
        tb.run(ranks, move |ctx, comm, adio| {
            let host = comm.host().clone();
            let f = MpiFile::open(ctx, adio, &host, "/p", OpenMode::create(), Hints::default())
                .unwrap();
            let el = Datatype::bytes(block);
            let ft = Datatype::resized(
                &Datatype::hindexed(&[(1, (comm.rank() as u64 * block) as i64)], &el),
                0,
                ranks as u64 * block,
            );
            f.set_view(0, &el, &ft);
            let src = host.mem.alloc((rounds as u64 * block) as usize);
            for round in 0..rounds {
                host.mem.fill(
                    src.offset(round as u64 * block),
                    block as usize,
                    (comm.rank() * rounds + round + 1) as u8,
                );
            }
            write_at_all(ctx, comm, &f, 0, src, rounds as u64 * block).unwrap();
        });
        let attr = fs.resolve("/p").unwrap();
        prop_assert_eq!(attr.size, rounds as u64 * ranks as u64 * block);
        let data = fs.read(attr.id, 0, attr.size).unwrap();
        for round in 0..rounds {
            for r in 0..ranks {
                let start = (round * ranks + r) as u64 * block;
                let expect = (r * rounds + round + 1) as u8;
                prop_assert!(
                    data[start as usize..(start + block) as usize]
                        .iter()
                        .all(|&b| b == expect),
                    "round {} rank {}", round, r
                );
            }
        }
    }
}
