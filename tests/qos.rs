//! QoS scheduler suite: weighted-fair sharing properties, full-stack
//! two-tenant progress, crash-of-a-throttled-tenant chaos, and the
//! legacy-client replay-identity regression.
//!
//! Everything runs in virtual time on seeded inputs, so every assertion
//! here is exactly reproducible.

use mpio_dafs::dafs::sched::{QueuedReq, RequestSched, WfqSched};
use mpio_dafs::dafs::{self, SchedPolicy, WfqParams};
use mpio_dafs::memfs::ROOT_ID;
use mpio_dafs::simnet::units::*;
use mpio_dafs::simnet::{Bytes, Cluster, Rng64, SimKernel, SimTime};
use mpio_dafs::via::{self, DataSegment, MemAttributes, RecvDesc, SendDesc, ViAttributes, ViId};

const PORT: u16 = 2049;

/// DRR shares must track declared weights for randomized tenant mixes —
/// and no tenant may starve — while every queue stays backlogged.
#[test]
fn wfq_shares_track_weights_under_random_mixes() {
    for seed in [1u64, 7, 42, 0xDEAD, 0xBEEF, 0x5EED_0009] {
        let kernel = SimKernel::new();
        kernel.spawn("sched", move |ctx| {
            let mut rng = Rng64::new(seed);
            let tenants = rng.range_usize(2, 5); // 2..=4
            let weights: Vec<u32> = (0..tenants).map(|_| rng.range(1, 9) as u32).collect();
            let mut s = WfqSched::new(WfqParams::default());
            let mut offered = vec![0u64; tenants];
            for t in 0..tenants {
                for _ in 0..300 {
                    let cost = rng.range(4 << 10, 64 << 10);
                    offered[t] += cost;
                    s.push(
                        ctx,
                        QueuedReq {
                            vi: ViId(t as u64),
                            tenant: t as u64,
                            weight: weights[t],
                            cost,
                            small: false,
                            arrival: ctx.now(),
                            frame: Bytes::from_vec(Vec::new()),
                        },
                    );
                }
            }
            // Drain a quarter of the offered bytes: every tenant stays
            // backlogged for the whole window (the heaviest possible
            // weight share of the drain is below any tenant's backlog),
            // so observed shares are pure scheduling policy.
            let total: u64 = offered.iter().sum();
            let mut served = vec![0u64; tenants];
            let mut drained = 0u64;
            while drained < total / 4 {
                let q = s.pop(ctx).expect("all tenants backlogged");
                served[q.tenant as usize] += q.cost;
                drained += q.cost;
            }
            let wsum: u64 = weights.iter().map(|&w| u64::from(w)).sum();
            for t in 0..tenants {
                let share = served[t] as f64 / drained as f64;
                let want = f64::from(weights[t]) / wsum as f64;
                assert!(
                    (share - want).abs() < 0.08,
                    "seed {seed:#x}: tenant {t} (weight {}) got share {share:.3}, want {want:.3}",
                    weights[t]
                );
                assert!(
                    share > want * 0.5,
                    "seed {seed:#x}: tenant {t} starved ({share:.3} vs {want:.3})"
                );
            }
        });
        kernel.run();
    }
}

/// Full stack, two declared tenants on one WFQ server: both make progress
/// and the per-tenant scheduler telemetry appears in the registry.
#[test]
fn two_tenant_full_stack_progress() {
    let kernel = SimKernel::new();
    let cluster = Cluster::new();
    let fabric = via::ViaFabric::new(via::ViaCost::default());
    let server_nic = fabric.open_nic(cluster.add_host("server0"));
    let sid = server_nic.host().id;
    let fs = mpio_dafs::memfs::MemFs::new();
    let bulk = fs.create(ROOT_ID, "bulk").unwrap();
    fs.write(bulk.id, 0, &vec![3u8; 1 << 20]).unwrap();
    fs.create(ROOT_ID, "meta").unwrap();
    let _server = dafs::spawn_dafs_server_sched(
        &kernel,
        &fabric,
        server_nic,
        fs.clone(),
        PORT,
        dafs::DafsServerCost::default(),
        SchedPolicy::Wfq(WfqParams::default()),
    );
    for (name, tenant, weight) in [("small", 1u64, 8u32), ("stream", 2, 1)] {
        let fabric = fabric.clone();
        let host = cluster.add_host(name);
        kernel.spawn(name, move |ctx| {
            let nic = fabric.open_nic(host.clone());
            let cfg = dafs::DafsClientConfig {
                tenant: Some((tenant, weight)),
                ..Default::default()
            };
            let c = dafs::DafsClient::connect(ctx, &fabric, &nic, sid, PORT, cfg).unwrap();
            if tenant == 1 {
                let f = c.lookup(ctx, ROOT_ID, "meta").unwrap();
                for _ in 0..50 {
                    c.getattr(ctx, f.id).unwrap();
                }
            } else {
                let f = c.lookup(ctx, ROOT_ID, "bulk").unwrap();
                let dst = nic.host().mem.alloc(1 << 20);
                for _ in 0..4 {
                    assert_eq!(c.read(ctx, f.id, 0, dst, 1 << 20).unwrap(), 1 << 20);
                }
            }
            c.disconnect(ctx);
        });
    }
    let obs = kernel.obs().clone();
    let end = kernel.run();
    assert!(
        end.as_nanos() < ms(500).as_nanos(),
        "two-tenant run wedged: {} ns",
        end.as_nanos()
    );
    let snap = obs.snapshot(end.as_nanos());
    // Both tenants flowed through the scheduler: their queue-delay
    // telemetry was registered (checked lookup panics on a typo'd name).
    snap.expect("dafs.sched.t1.queued_ns");
    snap.expect("dafs.sched.t2.queued_ns");
}

/// Chaos ladder: a weight-1 (credit-throttled) streaming tenant holds a
/// cache lease and a queue backlog, then its host goes dark mid-stream.
/// The other tenant's conflicting writes — parked behind the recall of the
/// dead holder's lease — must replay and complete once the server reaps
/// the session; nothing wedges.
#[test]
fn throttled_tenant_crash_mid_queue_releases_parked_frames() {
    let kernel = SimKernel::new();
    let cluster = Cluster::new();
    let fabric = via::ViaFabric::new(via::ViaCost::default());
    let server_nic = fabric.open_nic(cluster.add_host("server0"));
    let sid = server_nic.host().id;
    let fs = mpio_dafs::memfs::MemFs::new();
    let shared = fs.create(ROOT_ID, "shared").unwrap();
    fs.write(shared.id, 0, &vec![1u8; 8 << 10]).unwrap();
    let bulk = fs.create(ROOT_ID, "bulk").unwrap();
    fs.write(bulk.id, 0, &vec![2u8; 1 << 20]).unwrap();
    let _server = dafs::spawn_dafs_server_sched(
        &kernel,
        &fabric,
        server_nic,
        fs.clone(),
        PORT,
        dafs::DafsServerCost::default(),
        SchedPolicy::Wfq(WfqParams::default()),
    );
    let holder_host = cluster.add_host("holder");
    let writer_host = cluster.add_host("writer");
    let plan = mpio_dafs::simnet::FaultPlan::builder(0x0C_0A05)
        .host_crash(
            holder_host.id,
            SimTime::ZERO + ms(10),
            SimTime::ZERO + ms(10_000),
        )
        .build();
    fabric.set_fault_plan(plan);
    {
        // Throttled streaming tenant: grabs a read lease on "shared",
        // then keeps bulk reads queued until the crash kills the session.
        let fabric = fabric.clone();
        kernel.spawn("holder", move |ctx| {
            let nic = fabric.open_nic(holder_host.clone());
            let cfg = dafs::DafsClientConfig {
                tenant: Some((2, 1)),
                ..Default::default()
            };
            let c = dafs::DafsClient::connect(ctx, &fabric, &nic, sid, PORT, cfg).unwrap();
            let sh = c.lookup(ctx, ROOT_ID, "shared").unwrap();
            let dst = nic.host().mem.alloc(1 << 20);
            c.read_cached(ctx, sh.id, 0, dst, 4 << 10).unwrap();
            let b = c.lookup(ctx, ROOT_ID, "bulk").unwrap();
            // Stream until the crash surfaces as an error (the client
            // burns its bounded reconnect budget first — that must not
            // wedge either).
            while c.read(ctx, b.id, 0, dst, 1 << 20).is_ok() {}
        });
    }
    {
        // High-weight small tenant: conflicting writes to the leased file.
        let fabric = fabric.clone();
        kernel.spawn("writer", move |ctx| {
            ctx.advance(ms(20)); // strictly after the holder is dark
            let nic = fabric.open_nic(writer_host.clone());
            let cfg = dafs::DafsClientConfig {
                tenant: Some((1, 8)),
                ..Default::default()
            };
            let c = dafs::DafsClient::connect(ctx, &fabric, &nic, sid, PORT, cfg).unwrap();
            let f = c.lookup(ctx, ROOT_ID, "shared").unwrap();
            let src = nic.host().mem.alloc(4 << 10);
            nic.host().mem.fill(src, 4 << 10, 0x7E);
            for i in 0..4u64 {
                c.write(ctx, f.id, i * (4 << 10), src, 4 << 10).unwrap();
            }
            assert!(
                ctx.now().as_nanos() < ms(2_000).as_nanos(),
                "writes behind a dead holder's recall wedged: {} ns",
                ctx.now().as_nanos()
            );
            c.disconnect(ctx);
        });
    }
    kernel.run();
    let attr = fs.resolve("/shared").unwrap();
    let data = fs.read(attr.id, 0, 16 << 10).unwrap();
    assert!(
        data.iter().all(|&b| b == 0x7E),
        "parked writes did not all replay after the holder was reaped"
    );
}

/// Regression (legacy-client replay identity): two cid-less clients that
/// replay the *same* reqid must not share one replay-cache identity. The
/// old decode mapped every malformed/legacy Hello to client id 0, so the
/// second client's write was answered from the first client's cached
/// reply — and never applied.
#[test]
fn legacy_clients_get_distinct_replay_identities() {
    let kernel = SimKernel::new();
    let cluster = Cluster::new();
    let fabric = via::ViaFabric::new(via::ViaCost::default());
    let server_nic = fabric.open_nic(cluster.add_host("server0"));
    let sid = server_nic.host().id;
    let fs = mpio_dafs::memfs::MemFs::new();
    fs.create(ROOT_ID, "a").unwrap();
    fs.create(ROOT_ID, "b").unwrap();
    let _server = dafs::spawn_dafs_server(
        &kernel,
        &fabric,
        server_nic,
        fs.clone(),
        PORT,
        dafs::DafsServerCost::default(),
    );
    // Raw VIA clients speaking the legacy dialect: Hello with an *empty*
    // body (no client id), then WriteInline — both using reqid 42.
    for (name, file, fill) in [("legacy0", "a", 0xAAu8), ("legacy1", "b", 0xBB)] {
        let fabric = fabric.clone();
        let fs = fs.clone();
        let host = cluster.add_host(name);
        kernel.spawn(name, move |ctx| {
            let nic = fabric.open_nic(host.clone());
            let vi = fabric
                .connect(ctx, &nic, sid, PORT, ViAttributes::default())
                .unwrap();
            let tag = vi.ptag();
            // One recv slot per expected reply.
            for _ in 0..2 {
                let buf = nic.host().mem.alloc(1 << 10);
                let h = nic.register_mem(ctx, buf, 1 << 10, MemAttributes::local(tag));
                vi.post_recv(ctx, RecvDesc::new(vec![DataSegment::new(buf, 1 << 10, h)]));
            }
            let send = |ctx: &mpio_dafs::simnet::ActorCtx, frame: &[u8]| {
                let buf = nic.host().mem.alloc(frame.len());
                nic.host().mem.write(buf, frame);
                let h = nic.register_mem(ctx, buf, frame.len() as u64, MemAttributes::local(tag));
                vi.post_send(
                    ctx,
                    SendDesc::send(vec![DataSegment::new(buf, frame.len() as u32, h)]),
                );
                vi.send_wait(ctx);
                let resp = vi.recv_wait(ctx);
                assert!(resp.status.is_ok(), "{name}: transport error");
                let payload = resp.payload.expect("reply frame");
                // Response header: reqid u32 | status u8 (0 = OK).
                assert_eq!(payload[4], 0, "{name}: server returned an error");
            };
            // Legacy Hello: header only — reqid 1, op 18 — no client id.
            let mut hello = 1u32.to_le_bytes().to_vec();
            hello.push(18);
            send(ctx, &hello);
            // WriteInline, reqid 42 for BOTH clients: fh u64 | off u64 |
            // len-prefixed data.
            let f = fs.resolve(&format!("/{file}")).unwrap();
            let mut w = 42u32.to_le_bytes().to_vec();
            w.push(11);
            w.extend_from_slice(&f.id.0.to_le_bytes());
            w.extend_from_slice(&0u64.to_le_bytes());
            w.extend_from_slice(&128u32.to_le_bytes());
            w.extend(std::iter::repeat_n(fill, 128));
            send(ctx, &w);
            vi.disconnect(ctx);
        });
    }
    kernel.run();
    for (file, fill) in [("a", 0xAAu8), ("b", 0xBB)] {
        let attr = fs.resolve(&format!("/{file}")).unwrap();
        assert_eq!(attr.size, 128, "legacy write to '{file}' was not applied");
        assert_eq!(
            fs.read(attr.id, 0, 128).unwrap(),
            vec![fill; 128],
            "legacy write to '{file}' holds wrong bytes (replay identity collision?)"
        );
    }
}
