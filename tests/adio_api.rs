//! Unit tests backfilling the typed ADIO API surface: the `OpenOptions`
//! builder, `DriverKind` string round-trips, and the `source()` chain
//! threaded through `AdioError::Io`.

use std::error::Error;
use std::str::FromStr;

use mpio_dafs::mpiio::{AdioError, Backend, DriverKind, IoFault, OpenMode, OpenOptions, Testbed};
use mpio_dafs::nfsv3::NfsError;

#[test]
fn driver_kind_round_trips_through_strings() {
    for k in [DriverKind::Dafs, DriverKind::Nfs, DriverKind::Ufs] {
        assert_eq!(DriverKind::from_str(k.as_str()), Ok(k));
        assert_eq!(
            DriverKind::from_str(&k.to_string()),
            Ok(k),
            "Display agrees"
        );
    }
    // Case-insensitive on the way in; canonical lowercase on the way out.
    assert_eq!(DriverKind::from_str("DAFS"), Ok(DriverKind::Dafs));
    assert_eq!(DriverKind::Dafs.as_str(), "dafs");
    assert!(DriverKind::from_str("pvfs").is_err());
    assert!(DriverKind::from_str("").is_err());
}

#[test]
fn open_options_default_is_plain_open_of_existing_file() {
    let tb = Testbed::new(Backend::ufs());
    tb.run(1, |ctx, comm, adio| {
        let host = comm.host().clone();
        // Defaults: no create, no delete-on-close.
        let err = OpenOptions::new()
            .open(ctx, adio, &host, "/missing")
            .unwrap_err();
        assert_eq!(err, AdioError::NoSuchFile);
        let _ = comm;
    });
}

#[test]
fn open_options_overrides_take_effect() {
    let tb = Testbed::new(Backend::ufs());
    let fs = tb.fs.clone();
    tb.run(1, |ctx, comm, adio| {
        let host = comm.host().clone();
        // create(true) materialises the file; it persists after close.
        let f = OpenOptions::new()
            .create(true)
            .open(ctx, adio, &host, "/kept")
            .unwrap();
        f.close(ctx, adio).unwrap();
        OpenOptions::new()
            .open(ctx, adio, &host, "/kept")
            .unwrap()
            .close(ctx, adio)
            .unwrap();
        // delete_on_close(true) removes it at close.
        let f = OpenOptions::new()
            .create(true)
            .delete_on_close(true)
            .open(ctx, adio, &host, "/scratch")
            .unwrap();
        f.close(ctx, adio).unwrap();
        assert_eq!(
            OpenOptions::new()
                .open(ctx, adio, &host, "/scratch")
                .unwrap_err(),
            AdioError::NoSuchFile
        );
        // mode() replaces the whole mode in one call.
        let f = OpenOptions::new()
            .mode(OpenMode::create())
            .open(ctx, adio, &host, "/via-mode")
            .unwrap();
        f.close(ctx, adio).unwrap();
        // Later setters override earlier ones.
        let err = OpenOptions::new()
            .create(true)
            .create(false)
            .open(ctx, adio, &host, "/never-created")
            .unwrap_err();
        assert_eq!(err, AdioError::NoSuchFile);
        let _ = comm;
    });
    assert!(fs.resolve("/kept").is_ok());
    assert!(fs.resolve("/via-mode").is_ok());
    assert!(fs.resolve("/scratch").is_err());
    assert!(fs.resolve("/never-created").is_err());
}

#[test]
fn adio_error_source_chains_to_the_driver_error() {
    let e = AdioError::Io(IoFault::Nfs(NfsError::TimedOut));
    let fault = e.source().expect("Io must expose its fault");
    let inner = fault
        .source()
        .expect("the fault must expose the driver error");
    assert!(
        inner.downcast_ref::<NfsError>().is_some(),
        "chain must bottom out at the driver's own error type"
    );
    assert!(inner.source().is_none(), "TimedOut is a leaf");
    // Non-Io variants are leaves.
    assert!(AdioError::NoSuchFile.source().is_none());
    assert!(AdioError::Io(IoFault::Protocol)
        .source()
        .unwrap()
        .source()
        .is_none());
}
