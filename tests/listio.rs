//! List-I/O equivalence and data-sieving regression tests.
//!
//! The wire-level vectored ops must be a pure performance change: for any
//! sorted non-overlapping range list, the bytes a strided write puts on
//! the server — and a strided read returns — are identical whether the
//! request ships as one list op (`dafs_listio` on, the default), is
//! data-sieved (`dafs_listio=disable`, `romio_ds_*=enable`), or issued as
//! per-range batches. Inputs come from the in-tree deterministic PRNG
//! ([`simnet::Rng64`]), so every run explores exactly the same cases.

use mpio_dafs::mpiio::{Backend, Datatype, Hints, MpiFile, OpenMode, Testbed};
use mpio_dafs::simnet::{FaultPlan, Rng64};

/// A random sorted, non-overlapping range list. Lengths and gaps are drawn
/// below `max_len`/`max_gap`; a zero gap makes adjacent ranges, which the
/// view flattening merges — both shapes must behave.
fn gen_ranges(rng: &mut Rng64, max_n: usize, max_len: u64, max_gap: u64) -> Vec<(u64, u64)> {
    let n = rng.range_usize(2, max_n + 1);
    let mut off = rng.below(2048);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let len = rng.range(1, max_len + 1);
        out.push((off, len));
        off += len + rng.below(max_gap + 1);
    }
    out
}

/// A filetype whose first tile is exactly `ranges`: one `hindexed` block of
/// `len` bytes at each range's absolute displacement.
fn strided_ft(ranges: &[(u64, u64)]) -> Datatype {
    let blocks: Vec<(u64, i64)> = ranges.iter().map(|&(o, l)| (l, o as i64)).collect();
    Datatype::hindexed(&blocks, &Datatype::bytes(1))
}

/// Reassemble the logical byte stream from round-robin striped piece
/// files (logical block `g` lives on server `g % n` at local block
/// `g / n`). Piece files may legitimately differ in *trailing zeros*
/// between I/O strategies — sieving writes whole gap-covering windows,
/// per-range and list writes only the requested bytes — so equivalence is
/// judged on the logical image, where a short piece reads as zeros.
fn logical_image(pieces: &[Vec<u8>], stripe: u64) -> Vec<u8> {
    if let [single] = pieces {
        return single.clone();
    }
    let n = pieces.len() as u64;
    let mut size = 0u64;
    for (s, p) in pieces.iter().enumerate() {
        if p.is_empty() {
            continue;
        }
        let last = p.len() as u64 - 1;
        size = size.max(((last / stripe) * n + s as u64) * stripe + last % stripe + 1);
    }
    let mut img = vec![0u8; size as usize];
    for (b, out) in img.iter_mut().enumerate() {
        let g = b as u64 / stripe;
        let local = ((g / n) * stripe + b as u64 % stripe) as usize;
        let piece = &pieces[(g % n) as usize];
        if local < piece.len() {
            *out = piece[local];
        }
    }
    img
}

/// One strided write + read-back on a fresh single-rank testbed. The file
/// is pre-filled with `background` (exercising read-modify-write against
/// existing bytes and short reads past EOF), then `payload` is written
/// through a view shaped like `ranges` and read back for comparison.
/// Returns the logical file image for cross-configuration equality.
fn run_case(
    backend: Backend,
    plan: Option<FaultPlan>,
    stripe: u64,
    pairs: Vec<(String, String)>,
    ranges: Vec<(u64, u64)>,
    payload: Vec<u8>,
    background: Vec<u8>,
) -> Vec<u8> {
    let tb = match plan {
        Some(p) => Testbed::with_faults(backend, p),
        None => Testbed::new(backend),
    };
    let fss = if tb.server_fss.is_empty() {
        vec![tb.fs.clone()]
    } else {
        tb.server_fss.clone()
    };
    tb.run(1, move |ctx, comm, adio| {
        let host = comm.host().clone();
        let hints = Hints::from_pairs(pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())));
        let f = MpiFile::open(ctx, adio, &host, "/case", OpenMode::create(), hints).unwrap();
        if !background.is_empty() {
            let bg = host.mem.alloc(background.len());
            host.mem.write(bg, &background);
            f.write_at(ctx, 0, bg, background.len() as u64).unwrap();
        }
        let total = payload.len() as u64;
        let src = host.mem.alloc(payload.len());
        host.mem.write(src, &payload);
        f.set_view(0, &Datatype::bytes(1), &strided_ft(&ranges));
        f.write_at(ctx, 0, src, total).unwrap();
        let dst = host.mem.alloc(payload.len());
        let n = f.read_at(ctx, 0, dst, total).unwrap();
        assert_eq!(n, total, "short strided read-back");
        assert_eq!(
            host.mem.read_vec(dst, payload.len()),
            payload,
            "strided read-back returned different bytes than written"
        );
    });
    let pieces: Vec<Vec<u8>> = fss
        .iter()
        .map(|fs| {
            let attr = fs.resolve("/case").unwrap();
            fs.read(attr.id, 0, attr.size).unwrap()
        })
        .collect();
    logical_image(&pieces, stripe)
}

/// The three routing configurations under test. All must land identical
/// bytes for the same request.
fn configs() -> [Vec<(String, String)>; 3] {
    let p = |kv: &[(&str, &str)]| {
        kv.iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect::<Vec<_>>()
    };
    [
        // Wire-level list I/O (the DAFS default).
        p(&[]),
        // Data sieving, as before this optimization existed.
        p(&[
            ("dafs_listio", "disable"),
            ("romio_ds_read", "enable"),
            ("romio_ds_write", "enable"),
        ]),
        // Per-range batches: no sieving, no list ops.
        p(&[
            ("dafs_listio", "disable"),
            ("romio_ds_read", "disable"),
            ("romio_ds_write", "disable"),
        ]),
    ]
}

fn equivalence_cases(
    backend_of: impl Fn() -> Backend,
    plan_of: impl Fn(u64) -> Option<FaultPlan>,
    stripe: u64,
    extra: &[(&str, &str)],
    seed: u64,
    cases: usize,
    label: &str,
) {
    let mut rng = Rng64::new(seed);
    for case in 0..cases {
        // Mostly short dense lists; every 8th case a long tiny-segment list
        // that overflows LIST_MAX_SEGMENTS and must split across requests.
        let ranges = if case % 8 == 7 {
            gen_ranges(&mut rng, 300, 24, 48)
        } else {
            gen_ranges(&mut rng, 15, 4096, 2048)
        };
        let total: u64 = ranges.iter().map(|r| r.1).sum();
        let payload = rng.bytes(total as usize);
        // Background covering a random prefix of the extent, so some cases
        // sieve against existing bytes and some run past EOF.
        let extent = ranges.last().unwrap().0 + ranges.last().unwrap().1;
        let bg_len = rng.below(extent + 1) as usize;
        let background = rng.bytes(bg_len);
        let images: Vec<Vec<u8>> = configs()
            .into_iter()
            .map(|mut pairs| {
                pairs.extend(extra.iter().map(|(k, v)| (k.to_string(), v.to_string())));
                run_case(
                    backend_of(),
                    plan_of(seed ^ case as u64),
                    stripe,
                    pairs,
                    ranges.clone(),
                    payload.clone(),
                    background.clone(),
                )
            })
            .collect();
        assert_eq!(
            images[0],
            images[1],
            "{label} case {case}: list-I/O file image differs from sieving ({} ranges)",
            ranges.len()
        );
        assert_eq!(
            images[1],
            images[2],
            "{label} case {case}: sieved file image differs from per-range ({} ranges)",
            ranges.len()
        );
    }
}

/// ≥100 random sorted range lists across the three suites below; list I/O,
/// sieving and per-range batches must land byte-identical files on every
/// one (and each suite's read-backs must return the written payload).
#[test]
fn list_io_matches_sieving_raw_dafs() {
    equivalence_cases(Backend::dafs, |_| None, 0, &[], 0x115D_0001, 48, "dafs");
}

#[test]
fn list_io_matches_sieving_striped() {
    // A small stripe unit forces most lists to split across servers.
    equivalence_cases(
        || Backend::dafs_striped(3),
        |_| None,
        4096,
        &[("striping_unit", "4096")],
        0x115D_0002,
        32,
        "striped",
    );
}

#[test]
fn list_io_matches_sieving_under_faults() {
    // Seeded packet loss: list ops, their per-range fallback after failed
    // replays, and sieving must still agree byte-for-byte.
    let plan = |seed: u64| Some(FaultPlan::builder(seed).loss(0.01).build());
    equivalence_cases(Backend::dafs, plan, 0, &[], 0x115D_0003, 12, "dafs+loss");
    equivalence_cases(
        || Backend::dafs_striped(2),
        plan,
        8192,
        &[("striping_unit", "8192")],
        0x115D_0004,
        12,
        "striped+loss",
    );
}

/// Regression: a sieved write whose last window runs past EOF must
/// zero-fill the inter-range gap in that window, not persist whatever the
/// reused sieve buffer held from the previous window. (The short window
/// read stops at EOF; the whole-window write-back used to push the stale
/// tail into the file where the per-range path writes zeros.)
#[test]
fn sieved_write_zero_fills_gap_past_eof() {
    // ind_wr_buffer_size=4096 splits these ranges into two windows:
    // [(0,2000)] fills the sieve buffer with payload bytes, then
    // [(5000,100),(6000,100)] reads only 50 bytes (EOF at 5050) and
    // write-backs the 1100-byte window — including the 5100..6000 gap.
    let ranges = vec![(0u64, 2000u64), (5000, 100), (6000, 100)];
    let payload = vec![0xCD; 2200];
    let background = vec![0xAB; 5050];
    let sieve_pairs = vec![
        ("dafs_listio".to_string(), "disable".to_string()),
        ("romio_ds_write".to_string(), "enable".to_string()),
        ("ind_wr_buffer_size".to_string(), "4096".to_string()),
    ];
    let per_range_pairs = vec![
        ("dafs_listio".to_string(), "disable".to_string()),
        ("romio_ds_write".to_string(), "disable".to_string()),
    ];
    let sieved = run_case(
        Backend::dafs(),
        None,
        0,
        sieve_pairs,
        ranges.clone(),
        payload.clone(),
        background.clone(),
    );
    let per_range = run_case(
        Backend::dafs(),
        None,
        0,
        per_range_pairs,
        ranges,
        payload,
        background,
    );
    let img = &sieved;
    assert_eq!(img.len(), 6100);
    assert!(img[..2000].iter().all(|&b| b == 0xCD), "payload window 1");
    assert!(img[2000..5000].iter().all(|&b| b == 0xAB), "background");
    assert!(
        img[5000..5100].iter().all(|&b| b == 0xCD),
        "payload range 2"
    );
    assert!(
        img[5100..6000].iter().all(|&b| b == 0),
        "gap past EOF must be zero-filled, not hold stale sieve-buffer bytes"
    );
    assert!(img[6000..].iter().all(|&b| b == 0xCD), "payload range 3");
    assert_eq!(sieved, per_range, "sieved image differs from per-range");
}
