//! # mpio-dafs — MPI/IO on DAFS over VIA, reproduced in Rust
//!
//! Umbrella crate: re-exports the whole stack so examples and integration
//! tests can use one dependency. See `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for the reconstructed evaluation.
//!
//! The stack, bottom to top:
//!
//! * [`obs`] — virtual-time structured tracing + the hierarchical metrics
//!   registry every layer reports into (`MPIO_DAFS_TRACE` JSON-lines sink).
//! * [`simnet`] — deterministic discrete-event substrate (virtual time,
//!   actors, links, host CPU/memory models).
//! * [`via`] — Virtual Interface Architecture provider (VIPL-style API:
//!   VIs, registered memory, descriptors, completion queues, RDMA).
//! * [`memfs`] — in-memory filesystem backend shared by both servers.
//! * [`tcpnet`] — the kernel network path (sockets, TCP segmentation,
//!   copy/interrupt cost model) for the baseline.
//! * [`nfsv3`] — NFSv3-subset RPC client/server: the baseline file access
//!   path the paper compares against.
//! * [`dafs`] — the Direct Access File System protocol: sessions, inline
//!   and direct (RDMA) I/O, client registration cache, server event loop.
//! * [`mpiio`] — the paper's contribution: an MPI-IO implementation whose
//!   ADIO bottom end speaks DAFS-over-VIA (plus NFS and local drivers).

pub use dafs;
pub use memfs;
pub use mpiio;
pub use nfsv3;
pub use obs;
pub use simnet;
pub use tcpnet;
pub use via;
